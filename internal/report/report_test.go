package report_test

// The report profiler's contract is "correct by construction": it walks
// the same schedules and per-boundary move lists that internal/verify
// replays when proving legality. These tests hold it to that — every
// analyzed artifact first passes verify.Full, then every reported number
// is recomputed independently from the raw schedule and move lists.

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/report"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

var update = flag.Bool("update", false, "rewrite golden files")

// analyzed builds one verified (schedule, graph, result) triple from a
// seeded random leaf.
func analyzed(t *testing.T, seed int64, sched schedule.Scheduler, k, d int, copts comm.Options) (*schedule.Schedule, *dag.Graph, *comm.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 120, Qubits: 9})
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Schedule(m, g, k, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, copts)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Full(s, g, res, copts); err != nil {
		t.Fatalf("verify rejected the fixture: %v", err)
	}
	return s, g, res
}

// TestAnalyzeCrossCheck recomputes every analytic from the raw schedule
// and the verified move lists and compares, across both schedulers and
// the comm configurations that change movement behavior.
func TestAnalyzeCrossCheck(t *testing.T) {
	configs := []comm.Options{
		{},
		{LocalCapacity: -1},
		{LocalCapacity: 2},
		{LocalCapacity: -1, NoOverlap: true},
		{LocalCapacity: 1, EPRBandwidth: 2},
	}
	scheds := []schedule.Scheduler{rcp.Scheduler{}, lpfs.Scheduler{}}
	for si, sched := range scheds {
		for ci, copts := range configs {
			s, g, res := analyzed(t, int64(1000+si*10+ci), sched, 3, 3, copts)
			mr := report.Analyze("m", s, g, res)

			if mr.Cycles != res.Cycles || mr.StallCycles != res.StallCycles() {
				t.Errorf("%s/%d: cycles %d/%d, want %d/%d",
					sched.Name(), ci, mr.Cycles, mr.StallCycles, res.Cycles, res.StallCycles())
			}
			if mr.Steps != len(s.Steps) || mr.Ops != s.TotalOps() || mr.Width != s.K {
				t.Errorf("%s/%d: shape %d steps %d ops %d width", sched.Name(), ci, mr.Steps, mr.Ops, mr.Width)
			}
			if mr.CriticalPath != int64(g.CriticalPath()) {
				t.Errorf("%s/%d: cp %d != %d", sched.Name(), ci, mr.CriticalPath, g.CriticalPath())
			}

			// Movement: recount the verified boundary lists from scratch.
			var global, local, arrive, evLocal, evGlobal int64
			for _, bd := range res.Boundaries {
				for _, mv := range bd {
					if mv.Kind == comm.GlobalMove {
						global++
					} else {
						local++
					}
					switch mv.To.Kind {
					case comm.InRegion:
						arrive++
					case comm.InLocal:
						evLocal++
					case comm.InGlobal:
						evGlobal++
					}
				}
			}
			mb := mr.Moves
			if mb.Global != global || mb.Local != local {
				t.Errorf("%s/%d: moves %d/%d, recount %d/%d", sched.Name(), ci, mb.Global, mb.Local, global, local)
			}
			if mb.Global != res.GlobalMoves || mb.Local != res.LocalMoves {
				t.Errorf("%s/%d: breakdown %d/%d disagrees with summary %d/%d",
					sched.Name(), ci, mb.Global, mb.Local, res.GlobalMoves, res.LocalMoves)
			}
			if mb.Arrivals != arrive || mb.EvictToLocal != evLocal || mb.EvictToGlobal != evGlobal {
				t.Errorf("%s/%d: destination split %d/%d/%d, recount %d/%d/%d",
					sched.Name(), ci, mb.Arrivals, mb.EvictToLocal, mb.EvictToGlobal, arrive, evLocal, evGlobal)
			}
			if got := mb.Arrivals + mb.EvictToLocal + mb.EvictToGlobal; got != global+local {
				t.Errorf("%s/%d: destinations %d != moves %d", sched.Name(), ci, got, global+local)
			}

			// Occupancy: recompute busy regions per step directly.
			var busyTotal int64
			for ti, step := range s.Steps {
				busy := 0
				for _, ops := range step.Regions {
					if len(ops) > 0 {
						busy++
					}
				}
				busyTotal += int64(busy)
				if mr.StepOccupancy[ti] != busy {
					t.Fatalf("%s/%d: step %d occupancy %d, want %d", sched.Name(), ci, ti, mr.StepOccupancy[ti], busy)
				}
			}
			wantUtil := float64(busyTotal) / float64(s.K*len(s.Steps))
			if diff := mr.Utilization - wantUtil; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s/%d: utilization %f, want %f", sched.Name(), ci, mr.Utilization, wantUtil)
			}
			var histTotal int64
			for _, v := range mr.OccupancyHist {
				histTotal += v
			}
			if histTotal != int64(len(s.Steps)) {
				t.Errorf("%s/%d: occupancy hist sums to %d, want %d", sched.Name(), ci, histTotal, len(s.Steps))
			}

			// Slack: every scheduled op lands in exactly one bucket, and no
			// op can run before its ASAP level.
			var slackN int64
			for _, v := range mr.Slack.Hist {
				slackN += v
			}
			if slackN != int64(s.TotalOps()) {
				t.Errorf("%s/%d: slack hist covers %d ops, want %d", sched.Name(), ci, slackN, s.TotalOps())
			}
			at := s.StepOf()
			for i, ts := range at {
				if ts >= 0 && ts < g.Depth[i]-1 {
					t.Fatalf("%s/%d: op %d at step %d before ASAP %d", sched.Name(), ci, i, ts, g.Depth[i]-1)
				}
			}
		}
	}
}

// reportSource is a small two-leaf program whose evaluation is fully
// deterministic — the golden JSON fixture pins its report rendering.
const reportSource = `
module mixer(qbit x[3]) {
  H(x[0]);
  CNOT(x[0], x[1]);
  CNOT(x[1], x[2]);
  T(x[2]);
}
module ladder(qbit y[2]) {
  H(y[0]);
  CNOT(y[0], y[1]);
  T(y[1]);
  CNOT(y[0], y[1]);
}
module main() {
  qbit q[6];
  mixer(q[0:3]);
  ladder(q[3:5]);
  for (i = 0; i < 6; i++) {
    mixer(q[2:5]);
    ladder(q[0:2]);
  }
}
`

// evalReport evaluates reportSource with profiling on and returns the
// assembled report.
func evalReport(t *testing.T, opts core.EvalOptions) *report.Report {
	t.Helper()
	p, err := core.Build(reportSource, core.PipelineOptions{FTh: 50})
	if err != nil {
		t.Fatal(err)
	}
	opts.Profile = report.NewCollector()
	opts.Verify = true
	m, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := core.BuildReport(opts.Profile, "report-toy", m, opts)
	if err := r.Validate(); err != nil {
		t.Fatalf("built report fails its own validation: %v", err)
	}
	return r
}

func TestGoldenJSON(t *testing.T) {
	r := evalReport(t, core.EvalOptions{K: 3, Comm: comm.Options{LocalCapacity: -1}})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_toy.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report drifted from %s; run with -update if intended.\ngot:\n%s", golden, buf.String())
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := evalReport(t, core.EvalOptions{K: 3, Comm: comm.Options{LocalCapacity: 2}})
	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Error("report did not survive a JSON round trip")
	}
}

func TestValidateRejects(t *testing.T) {
	r := evalReport(t, core.EvalOptions{K: 2})
	bad := *r
	bad.Schema = report.SchemaVersion + 1
	if err := bad.Validate(); err == nil {
		t.Error("wrong schema version accepted")
	}
	bad = *r
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	if len(r.Modules) >= 2 {
		bad = *r
		bad.Modules = []report.ModuleReport{r.Modules[1], r.Modules[0]}
		if err := bad.Validate(); err == nil {
			t.Error("unsorted modules accepted")
		}
	}
	bad = *r
	bad.Modules = append([]report.ModuleReport(nil), r.Modules...)
	bad.Modules[0].Utilization = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("utilization > 1 accepted")
	}
}

// TestHTMLSelfContained renders the report and asserts the output pulls
// nothing from the network: no scripts, stylesheets, images or fonts.
func TestHTMLSelfContained(t *testing.T) {
	r := evalReport(t, core.EvalOptions{K: 3, Comm: comm.Options{LocalCapacity: -1, EPRBandwidth: 1}})
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, banned := range []string{"<script", "<link", "<img", "http://", "https://", "url(", "@import", "src="} {
		if strings.Contains(html, banned) {
			t.Errorf("HTML report contains %q — not self-contained", banned)
		}
	}
	for _, want := range []string{"<svg", "polyline", "report-toy", "mixer", "ladder"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

// TestDiffAttributesInjectedRegression injects a schedule-length
// regression into one module and checks Diff pins the blame on it, down
// to the first divergent step.
func TestDiffAttributesInjectedRegression(t *testing.T) {
	a := evalReport(t, core.EvalOptions{K: 3})
	b := evalReport(t, core.EvalOptions{K: 3})

	// Baseline sanity: identical runs must diff clean.
	if d := report.Diff(a, b); d.Changed() || d.Regression {
		t.Fatalf("identical runs diff dirty: %+v", d)
	}

	// Inject: module "mixer" gains 5 steps and 9 cycles, diverging at
	// step 1; whole-benchmark totals grow accordingly.
	b.Totals.CommCycles += 9
	b.Totals.ZeroCommSteps += 5
	var victim *report.ModuleReport
	for i := range b.Modules {
		if b.Modules[i].Name == "mixer" {
			victim = &b.Modules[i]
		}
	}
	if victim == nil {
		t.Fatal("no mixer module in the report")
	}
	victim.Steps += 5
	victim.Cycles += 9
	victim.StallCycles += 4
	if len(victim.StepOccupancy) < 2 {
		t.Fatalf("mixer occupancy series too short: %d", len(victim.StepOccupancy))
	}
	victim.StepOccupancy[1]++

	d := report.Diff(a, b)
	if !d.Regression {
		t.Fatal("injected regression not flagged")
	}
	if d.ConfigDrift {
		t.Error("identical configs flagged as drift")
	}
	if d.Totals.CommCycles != 9 || d.Totals.ZeroCommSteps != 5 {
		t.Errorf("totals delta %+d/%+d, want +9/+5", d.Totals.CommCycles, d.Totals.ZeroCommSteps)
	}
	if len(d.Modules) == 0 {
		t.Fatal("no module attribution")
	}
	top := d.Modules[0]
	if top.Name != "mixer" || top.Presence != "both" {
		t.Fatalf("blame on %q (%s), want mixer (both)", top.Name, top.Presence)
	}
	if top.Steps != 5 || top.Cycles != 9 || top.StallCycles != 4 {
		t.Errorf("mixer delta steps=%d cycles=%d stall=%d, want 5/9/4", top.Steps, top.Cycles, top.StallCycles)
	}
	if top.FirstDivergentStep != 1 {
		t.Errorf("first divergent step %d, want 1", top.FirstDivergentStep)
	}
	if !top.CriticalPathSame {
		t.Error("critical path flagged as changed; only the schedule moved")
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"comm cycles +9", "mixer: +9 cycles", "diverges at step 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("attribution text missing %q:\n%s", want, text)
		}
	}
}

// TestDiffConfigDrift compares runs at different d and expects the drift
// flag, so config changes are never mistaken for scheduler regressions.
func TestDiffConfigDrift(t *testing.T) {
	a := evalReport(t, core.EvalOptions{K: 3})
	b := evalReport(t, core.EvalOptions{K: 3, D: 2})
	d := report.Diff(a, b)
	if !d.ConfigDrift {
		t.Error("d=∞ vs d=2 not flagged as config drift")
	}
	// Capping d can only lengthen schedules; the drift flag must coexist
	// with honest deltas.
	if d.Totals.ZeroCommSteps < 0 {
		t.Errorf("d=2 shortened the schedule? delta %d", d.Totals.ZeroCommSteps)
	}
}

func TestDiffPresence(t *testing.T) {
	a := evalReport(t, core.EvalOptions{K: 3})
	b := evalReport(t, core.EvalOptions{K: 3})
	b.Modules = b.Modules[:1] // drop the later module from B
	d := report.Diff(a, b)
	var gone bool
	for _, m := range d.Modules {
		if m.Presence == "a-only" {
			gone = true
		}
	}
	if !gone {
		t.Errorf("dropped module not reported a-only: %+v", d.Modules)
	}
}

// TestNilCollectorAllocatesNothing pins the disabled-profiling cost to
// nil checks only, the obs convention.
func TestNilCollectorAllocatesNothing(t *testing.T) {
	s, g, res := analyzed(t, 7, rcp.Scheduler{}, 3, 0, comm.Options{})
	var c *report.Collector
	if n := testing.AllocsPerRun(100, func() {
		c.Add("m", s, g, res)
		_ = c.Len()
		_ = c.Modules()
	}); n != 0 {
		t.Errorf("nil collector allocates %v per run", n)
	}
}

// TestCollectorConcurrent mirrors the engine: many goroutines adding
// distinct leaves concurrently must all land.
func TestCollectorConcurrent(t *testing.T) {
	s, g, res := analyzed(t, 11, rcp.Scheduler{}, 3, 0, comm.Options{})
	c := report.NewCollector()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 16; i++ {
				c.Add(string(rune('a'+w))+"-leaf", s, g, res)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if c.Len() != 8 {
		t.Errorf("collector holds %d modules, want 8", c.Len())
	}
	mods := c.Modules()
	for i := 1; i < len(mods); i++ {
		if mods[i-1].Name >= mods[i].Name {
			t.Errorf("modules unsorted at %d: %q >= %q", i, mods[i-1].Name, mods[i].Name)
		}
	}
}
