// Package report is the schedule-level profiler of the toolflow: where
// package obs observes the *Go process* (spans, counters, pprof), this
// package observes the *schedules the process emits*. It consumes the
// artifacts of one hierarchical evaluation — each leaf module's
// fine-grained schedule, dependency DAG and communication analysis —
// and derives the quantities the paper evaluates schedules by:
// per-timestep region occupancy, SIMD utilization per region and
// overall, d-fill, move breakdowns (local/global, eviction/departure),
// communication-overhead fraction, achieved length against the critical
// path, and per-op slack against the ASAP bound.
//
// Three renderings share one versioned in-memory form (Report):
//
//   - a stable JSON schema (SchemaVersion, golden-tested) written by
//     qsched -report-json and qbench's per-benchmark REPORT_<name>.json;
//   - a fully self-contained HTML file (inline SVG Gantt with move
//     arrows, utilization sparklines, no external assets — see html.go);
//   - a structured run-to-run comparison (Diff, diff.go) that
//     attributes metric deltas to specific modules, regions and steps.
//
// The analytics walk the same per-boundary move lists that
// internal/verify replays when checking legality, so a verified
// evaluation's reported movement numbers are correct by construction;
// the package's tests cross-check both against each other.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// SchemaVersion is the JSON report schema version. It increments on any
// backward-incompatible change to the serialized form; readers reject
// mismatched versions (see ReadFile) and CI validates emitted artifacts
// against it.
const SchemaVersion = 1

const (
	// seriesCap bounds the per-step occupancy series kept per module, so
	// Shor's-scale leaves cannot balloon the JSON; Truncated marks the
	// cut.
	seriesCap = 2048
	// ganttStepCap bounds the schedules that carry full Gantt cell/move
	// data (the HTML timeline); longer schedules fall back to the
	// occupancy sparkline only.
	ganttStepCap = 240
	// ganttMoveCap bounds the move arrows kept for the Gantt overlay.
	ganttMoveCap = 4000
	// histCap is the linear bucket count of the d-fill and slack
	// histograms: buckets 0..histCap-2 hold exact values, the last
	// bucket collects everything >= histCap-1.
	histCap = 17
)

// CommConfig mirrors comm.Options into the serialized report so a diff
// can tell configuration drift from scheduler drift.
type CommConfig struct {
	LocalCapacity int  `json:"local_capacity"`
	NoOverlap     bool `json:"no_overlap,omitempty"`
	EPRBandwidth  int  `json:"epr_bandwidth,omitempty"`
}

// CommConfigOf converts the analysis options.
func CommConfigOf(o comm.Options) CommConfig {
	return CommConfig{
		LocalCapacity: o.LocalCapacity,
		NoOverlap:     o.NoOverlap,
		EPRBandwidth:  o.EPRBandwidth,
	}
}

// Totals is the whole-benchmark metric set (core.Metrics plus the
// derived ratios), denormalized into the report so it is self-contained.
type Totals struct {
	TotalGates    int64 `json:"total_gates"`
	MinQubits     int64 `json:"min_qubits"`
	Modules       int   `json:"modules"`
	Leaves        int   `json:"leaves"`
	CriticalPath  int64 `json:"critical_path"`
	ZeroCommSteps int64 `json:"zero_comm_steps"`
	CommCycles    int64 `json:"comm_cycles"`
	GlobalMoves   int64 `json:"global_moves"`
	LocalMoves    int64 `json:"local_moves"`
	SeqCycles     int64 `json:"seq_cycles"`
	NaiveCycles   int64 `json:"naive_cycles"`

	SpeedupVsSeq   float64 `json:"speedup_vs_seq"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
	CPSpeedup      float64 `json:"cp_speedup"`
	// CommOverheadFraction is (CommCycles - ZeroCommSteps) / CommCycles:
	// the share of the achieved runtime spent on unmasked movement.
	CommOverheadFraction float64 `json:"comm_overhead_fraction"`
}

// MoveBreakdown classifies every move of a module's boundary lists.
// Arrivals land operands in regions; evictions park displaced qubits in
// a scratchpad or flush them to global memory; departures drain a
// scratchpad back into its region (counted inside Arrivals too — a
// departure *is* an arrival from local memory).
type MoveBreakdown struct {
	Global int64 `json:"global"`
	Local  int64 `json:"local"`

	Arrivals      int64 `json:"arrivals"`
	EvictToLocal  int64 `json:"evict_to_local"`
	EvictToGlobal int64 `json:"evict_to_global"`
	FromLocal     int64 `json:"from_local"`
	FromGlobal    int64 `json:"from_global"`

	EPRPairs          int64 `json:"epr_pairs"`
	PeakEPRBandwidth  int   `json:"peak_epr_bandwidth"`
	MaxLocalOccupancy int   `json:"max_local_occupancy"`
}

// SlackStats summarizes how far ops slipped past their ASAP level
// (scheduled step minus dependency depth): the schedule-quality price of
// every scheduler decision. Hist is linear with the last bucket open.
type SlackStats struct {
	Hist []int64 `json:"hist"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

// GanttCell is one busy (step, region) point of the timeline.
type GanttCell struct {
	Step   int `json:"t"`
	Region int `json:"r"`
	Ops    int `json:"ops"`
	Qubits int `json:"qubits"`
}

// GanttMove is one move charged at the boundary entering Step. From/To
// are region indices, -1 for global memory; a non-global move always
// connects a region to its own scratchpad (From == To).
type GanttMove struct {
	Step   int  `json:"t"`
	From   int  `json:"from"`
	To     int  `json:"to"`
	Global bool `json:"global"`
}

// Gantt is the dense timeline of a short module, present only when the
// schedule fits ganttStepCap steps.
type Gantt struct {
	Steps          int         `json:"steps"`
	Cells          []GanttCell `json:"cells"`
	Moves          []GanttMove `json:"moves,omitempty"`
	MovesTruncated bool        `json:"moves_truncated,omitempty"`
}

// ModuleReport is the full analytics set of one profiled leaf module at
// the machine width the evaluation selected.
type ModuleReport struct {
	Name  string `json:"name"`
	Width int    `json:"width"` // regions available (k)
	D     int    `json:"d"`     // per-region data parallelism; 0 = unlimited
	Steps int    `json:"steps"`
	Ops   int    `json:"ops"`

	CriticalPath int64 `json:"critical_path"` // DAG bound on Steps
	Cycles       int64 `json:"cycles"`        // comm-expanded runtime
	StallCycles  int64 `json:"stall_cycles"`
	// CommOverheadFraction is StallCycles / Cycles.
	CommOverheadFraction float64 `json:"comm_overhead_fraction"`

	// Utilization is busy region-steps over Width x Steps; RegionUtil is
	// each region's busy fraction of the schedule.
	Utilization float64   `json:"utilization"`
	RegionUtil  []float64 `json:"region_util"`
	// OccupancyHist[b] counts timesteps with exactly b busy regions.
	OccupancyHist []int64 `json:"occupancy_hist"`
	// DFillHist[q] counts busy region-steps operating on exactly q
	// qubits (last bucket open-ended) — how full the d lanes run.
	DFillHist []int64 `json:"d_fill_hist"`

	Moves MoveBreakdown `json:"moves"`
	Slack SlackStats    `json:"slack"`

	// StepOccupancy is the busy-region count per timestep, capped at
	// seriesCap entries (Truncated marks the cut). Diff uses it to name
	// the first step two runs diverge at.
	StepOccupancy []int `json:"step_occupancy"`
	Truncated     bool  `json:"truncated,omitempty"`

	Gantt *Gantt `json:"gantt,omitempty"`
}

// Report is the versioned, self-contained profile of one evaluation.
type Report struct {
	Schema    int        `json:"schema"`
	Benchmark string     `json:"benchmark"`
	Scheduler string     `json:"scheduler"`
	K         int        `json:"k"`
	D         int        `json:"d"`
	Comm      CommConfig `json:"comm"`
	Totals    Totals     `json:"totals"`
	// Modules holds the profiled leaves, sorted by name.
	Modules []ModuleReport `json:"modules"`
}

// Analyze computes one leaf's analytics from its fine-grained schedule,
// dependency graph and communication analysis. It walks exactly the
// per-boundary move lists that verify.Moves replays, so on a verified
// evaluation the movement numbers here are the replayed ground truth.
func Analyze(name string, s *schedule.Schedule, g *dag.Graph, res *comm.Result) ModuleReport {
	nSteps := len(s.Steps)
	mr := ModuleReport{
		Name:          name,
		Width:         s.K,
		D:             s.D,
		Steps:         nSteps,
		Ops:           s.TotalOps(),
		CriticalPath:  int64(g.CriticalPath()),
		Cycles:        res.Cycles,
		StallCycles:   res.StallCycles(),
		RegionUtil:    make([]float64, s.K),
		OccupancyHist: make([]int64, s.K+1),
		DFillHist:     make([]int64, histCap),
	}
	if mr.Cycles > 0 {
		mr.CommOverheadFraction = float64(mr.StallCycles) / float64(mr.Cycles)
	}

	keepSeries := nSteps
	if keepSeries > seriesCap {
		keepSeries, mr.Truncated = seriesCap, true
	}
	mr.StepOccupancy = make([]int, keepSeries)

	busySteps := make([]int64, s.K)
	var busyRegionSteps int64
	for t := 0; t < nSteps; t++ {
		busy := 0
		for r, ops := range s.Steps[t].Regions {
			if len(ops) == 0 {
				continue
			}
			busy++
			busyRegionSteps++
			if r < len(busySteps) {
				busySteps[r]++
			}
			qubits := 0
			for _, op := range ops {
				qubits += len(s.M.Ops[op].Args)
			}
			mr.DFillHist[histBucket(qubits)]++
		}
		if busy < len(mr.OccupancyHist) {
			mr.OccupancyHist[busy]++
		}
		if t < keepSeries {
			mr.StepOccupancy[t] = busy
		}
	}
	if nSteps > 0 && s.K > 0 {
		mr.Utilization = float64(busyRegionSteps) / float64(int64(s.K)*int64(nSteps))
		for r := range mr.RegionUtil {
			mr.RegionUtil[r] = float64(busySteps[r]) / float64(nSteps)
		}
	}

	mr.Moves = breakdown(res)
	mr.Slack = slack(s, g)
	if nSteps > 0 && nSteps <= ganttStepCap {
		mr.Gantt = buildGantt(s, res)
	}
	return mr
}

// histBucket maps a count onto the linear-with-overflow histogram.
func histBucket(v int) int {
	if v < 0 {
		v = 0
	}
	if v >= histCap-1 {
		return histCap - 1
	}
	return v
}

// breakdown classifies the boundary move lists.
func breakdown(res *comm.Result) MoveBreakdown {
	mb := MoveBreakdown{
		EPRPairs:          res.EPRPairs,
		PeakEPRBandwidth:  res.PeakEPRBandwidth,
		MaxLocalOccupancy: res.MaxLocalOccupancy,
	}
	for _, bd := range res.Boundaries {
		for _, mv := range bd {
			if mv.Kind == comm.GlobalMove {
				mb.Global++
			} else {
				mb.Local++
			}
			switch mv.To.Kind {
			case comm.InRegion:
				mb.Arrivals++
			case comm.InLocal:
				mb.EvictToLocal++
			case comm.InGlobal:
				mb.EvictToGlobal++
			}
			switch mv.From.Kind {
			case comm.InLocal:
				mb.FromLocal++
			case comm.InGlobal:
				mb.FromGlobal++
			}
		}
	}
	return mb
}

// slack measures each op's scheduled step against its 1-based ASAP
// depth: slack 0 means the op ran as early as dependencies allow.
func slack(s *schedule.Schedule, g *dag.Graph) SlackStats {
	st := SlackStats{Hist: make([]int64, histCap)}
	at := s.StepOf()
	var total, n int64
	for i, t := range at {
		if t < 0 {
			continue
		}
		sl := int64(t) - int64(g.Depth[i]-1)
		if sl < 0 {
			sl = 0
		}
		st.Hist[histBucket(int(sl))]++
		total += sl
		n++
		if sl > st.Max {
			st.Max = sl
		}
	}
	if n > 0 {
		st.Mean = float64(total) / float64(n)
	}
	return st
}

// buildGantt flattens a short schedule into timeline cells plus its
// boundary moves for the HTML arrow overlay.
func buildGantt(s *schedule.Schedule, res *comm.Result) *Gantt {
	gt := &Gantt{Steps: len(s.Steps)}
	for t := range s.Steps {
		for r, ops := range s.Steps[t].Regions {
			if len(ops) == 0 {
				continue
			}
			qubits := 0
			for _, op := range ops {
				qubits += len(s.M.Ops[op].Args)
			}
			gt.Cells = append(gt.Cells, GanttCell{Step: t, Region: r, Ops: len(ops), Qubits: qubits})
		}
	}
	for t, bd := range res.Boundaries {
		for _, mv := range bd {
			if len(gt.Moves) >= ganttMoveCap {
				gt.MovesTruncated = true
				return gt
			}
			gt.Moves = append(gt.Moves, GanttMove{
				Step:   t,
				From:   ganttLane(mv.From),
				To:     ganttLane(mv.To),
				Global: mv.Kind == comm.GlobalMove,
			})
		}
	}
	return gt
}

// ganttLane maps a residence onto a timeline lane: its region, or -1
// for global memory (drawn as a rail below the regions).
func ganttLane(l comm.Loc) int {
	if l.Kind == comm.InGlobal {
		return -1
	}
	return int(l.Region)
}

// Collector accumulates per-leaf profiles while an evaluation runs. It
// is safe for concurrent use (the engine adds from its worker pool) and
// nil-safe: a nil Collector ignores Add and returns nothing, so the
// disabled path costs a nil check only (AllocsPerRun-guarded, the obs
// convention).
type Collector struct {
	mu   sync.Mutex
	mods map[string]ModuleReport
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{mods: map[string]ModuleReport{}}
}

// Add profiles one leaf characterization and records it under name.
// Re-adding a name overwrites (the engine profiles each leaf once).
func (c *Collector) Add(name string, s *schedule.Schedule, g *dag.Graph, res *comm.Result) {
	if c == nil {
		return
	}
	mr := Analyze(name, s, g, res)
	c.mu.Lock()
	c.mods[name] = mr
	c.mu.Unlock()
}

// Len reports the number of profiled modules.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mods)
}

// Modules returns the collected profiles sorted by module name —
// deterministic output regardless of worker-pool completion order.
func (c *Collector) Modules() []ModuleReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ModuleReport, 0, len(c.mods))
	for _, mr := range c.mods {
		out = append(out, mr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Validate checks the report's schema version and structural invariants
// (modules sorted and self-consistent). It is the same gate CI applies
// to emitted JSON artifacts.
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("report: schema version %d, this toolflow reads %d", r.Schema, SchemaVersion)
	}
	if r.K < 1 {
		return fmt.Errorf("report: k = %d, want >= 1", r.K)
	}
	for i, m := range r.Modules {
		if i > 0 && r.Modules[i-1].Name >= m.Name {
			return fmt.Errorf("report: modules out of order at %q", m.Name)
		}
		if m.Steps < 0 || m.Cycles < int64(m.Steps) {
			return fmt.Errorf("report: module %q: %d cycles for %d steps", m.Name, m.Cycles, m.Steps)
		}
		if m.Utilization < 0 || m.Utilization > 1 {
			return fmt.Errorf("report: module %q: utilization %f outside [0,1]", m.Name, m.Utilization)
		}
		if m.CommOverheadFraction < 0 || m.CommOverheadFraction > 1 {
			return fmt.Errorf("report: module %q: comm overhead fraction %f outside [0,1]", m.Name, m.CommOverheadFraction)
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteJSONFile writes the JSON rendering to path.
func (r *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads and validates a JSON report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return r, nil
}
