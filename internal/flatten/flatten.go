// Package flatten implements the paper's leaf-module flattening pass
// (§3.1.1): every module whose fully expanded gate count is at most the
// Flattening Threshold (FTh) has all of its calls inlined, turning it
// into a leaf of at most FTh operations. Larger modules keep their call
// structure and are stitched by the coarse-grained scheduler.
package flatten

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/resource"
)

// DefaultThreshold is the paper's FTh of 2 million operations (3 million
// for SHA-1, which callers set explicitly).
const DefaultThreshold = 2_000_000

// Options configures flattening.
type Options struct {
	// Threshold is FTh in gates; 0 defaults to DefaultThreshold.
	Threshold int64
}

func (o Options) threshold() int64 {
	if o.Threshold == 0 {
		return DefaultThreshold
	}
	return o.Threshold
}

// Stats reports what flattening did.
type Stats struct {
	Threshold      int64
	Flattened      int // modules whose calls were all inlined
	AlreadyLeaf    int
	KeptModular    int // modules above FTh
	InlinedCallOps int
}

// Program flattens the program in place.
//
// Processing bottom-up guarantees that when a module under FTh inlines
// its calls, every callee is already a leaf (a callee's gate count never
// exceeds its caller's), so one pass suffices.
func Program(p *ir.Program, opts Options) (*Stats, error) {
	fth := opts.threshold()
	est, err := resource.New(p)
	if err != nil {
		return nil, err
	}
	stats := &Stats{Threshold: fth}
	for _, name := range est.Reachable() {
		m := p.Modules[name]
		gates, err := est.Gates(name)
		if err != nil {
			return nil, err
		}
		if gates > fth {
			stats.KeptModular++
			continue
		}
		if m.IsLeaf() {
			stats.AlreadyLeaf++
			continue
		}
		if err := inlineAll(p, m, fth); err != nil {
			return nil, err
		}
		stats.Flattened++
		stats.InlinedCallOps += countGates(m)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("flatten: produced invalid program: %w", err)
	}
	return stats, nil
}

// inlineAll expands every call op in a single pass. Callees are already
// leaves (bottom-up processing), so one pass makes the module a leaf.
func inlineAll(p *ir.Program, m *ir.Module, fth int64) error {
	hasCall := false
	for i := range m.Ops {
		if m.Ops[i].Kind == ir.CallOp {
			hasCall = true
			break
		}
	}
	if !hasCall {
		return nil
	}
	out := make([]ir.Op, 0, len(m.Ops))
	var err error
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Kind != ir.CallOp {
			out = append(out, *op)
			continue
		}
		callee := p.Modules[op.Callee]
		if callee == nil {
			return fmt.Errorf("flatten: module %s calls missing %q", m.Name, op.Callee)
		}
		if !callee.IsLeaf() {
			return fmt.Errorf("flatten: internal error: callee %s of %s not yet a leaf", callee.Name, m.Name)
		}
		out, err = p.ExpandCall(out, m, op, i)
		if err != nil {
			return err
		}
		if int64(len(out)) > 4*fth {
			// Inlining materializes call repetitions; a module under FTh
			// expanded gates can still blow up structurally if counts
			// hide in gate ops. Guard against runaway growth.
			return fmt.Errorf("flatten: module %s grew past %d ops while inlining", m.Name, 4*fth)
		}
	}
	m.Ops = out
	return nil
}

func countGates(m *ir.Module) int {
	n := 0
	for i := range m.Ops {
		if m.Ops[i].Kind == ir.GateOp {
			n++
		}
	}
	return n
}
