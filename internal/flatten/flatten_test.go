package flatten_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/flatten"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/resource"
)

// buildProgram: leaf (3 gates) <- mid (2 calls = 6 gates) <- main
// (4 mid calls = 24 gates).
func buildProgram() *ir.Program {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 2}}, nil)
	leaf.Gate(qasm.H, 0).Gate(qasm.CNOT, 0, 1).Gate(qasm.H, 1)
	p.Add(leaf)
	mid := ir.NewModule("mid", []ir.Reg{{Name: "y", Size: 2}}, nil)
	mid.Call("leaf", ir.Range{Start: 0, Len: 2})
	mid.Call("leaf", ir.Range{Start: 0, Len: 2})
	p.Add(mid)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 8}})
	for i := 0; i < 4; i++ {
		main.Call("mid", ir.Range{Start: i * 2, Len: 2})
	}
	p.Add(main)
	return p
}

func gatesOf(t *testing.T, p *ir.Program, name string) int64 {
	t.Helper()
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := est.Gates(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFlattenAll(t *testing.T) {
	p := buildProgram()
	before := gatesOf(t, p, "main")
	stats, err := flatten.Program(p, flatten.Options{Threshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Modules["main"].IsLeaf() || !p.Modules["mid"].IsLeaf() {
		t.Error("modules under FTh kept calls")
	}
	if got := gatesOf(t, p, "main"); got != before {
		t.Errorf("gate count changed: %d -> %d", before, got)
	}
	if stats.Flattened != 2 || stats.AlreadyLeaf != 1 {
		t.Errorf("stats: %+v", stats)
	}
}

func TestFlattenThresholdStopsInlining(t *testing.T) {
	p := buildProgram()
	// FTh 10: leaf (3) stays leaf; mid (6) flattens; main (24) keeps
	// its calls.
	stats, err := flatten.Program(p, flatten.Options{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Modules["mid"].IsLeaf() {
		t.Error("mid should be flattened")
	}
	if p.Modules["main"].IsLeaf() {
		t.Error("main should stay modular above FTh")
	}
	if stats.KeptModular != 1 {
		t.Errorf("stats: %+v", stats)
	}
	// The kept calls now target a flattened (leaf) mid.
	for i := range p.Modules["main"].Ops {
		op := &p.Modules["main"].Ops[i]
		if op.Kind == ir.CallOp && op.Callee != "mid" {
			t.Errorf("unexpected callee %s", op.Callee)
		}
	}
}

func TestFlattenPreservesSemantics(t *testing.T) {
	// Gate sequences must be identical module-boundary effects: check
	// the flat op stream of main matches manual inline expectation.
	p := buildProgram()
	if _, err := flatten.Program(p, flatten.Options{Threshold: 1000}); err != nil {
		t.Fatal(err)
	}
	main := p.Modules["main"]
	if len(main.Ops) != 24 {
		t.Fatalf("main has %d ops, want 24", len(main.Ops))
	}
	// First leaf instance operates on q0,q1: H(0) CNOT(0,1) H(1).
	if main.Ops[0].Gate != qasm.H || main.Ops[0].Args[0] != 0 {
		t.Errorf("op0: %+v", main.Ops[0])
	}
	if main.Ops[1].Gate != qasm.CNOT || main.Ops[1].Args[1] != 1 {
		t.Errorf("op1: %+v", main.Ops[1])
	}
	// Third mid instance targets q4,q5.
	if main.Ops[12].Args[0] != 4 {
		t.Errorf("op12 targets slot %d, want 4", main.Ops[12].Args[0])
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenWithCounts(t *testing.T) {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, nil)
	leaf.Gate(qasm.T, 0)
	p.Add(leaf)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.CallN("leaf", 50, ir.Range{Start: 0, Len: 1})
	p.Add(main)
	if _, err := flatten.Program(p, flatten.Options{Threshold: 100}); err != nil {
		t.Fatal(err)
	}
	if len(p.Modules["main"].Ops) != 50 {
		t.Errorf("replicated to %d ops", len(p.Modules["main"].Ops))
	}
}

func TestDefaultThreshold(t *testing.T) {
	if flatten.DefaultThreshold != 2_000_000 {
		t.Errorf("paper FTh is 2M, got %d", flatten.DefaultThreshold)
	}
}

func TestFlattenGrowthGuard(t *testing.T) {
	// A module whose expanded gate count is under FTh but whose
	// structural expansion explodes via counted calls is caught by the
	// growth guard rather than exhausting memory... construct: leaf with
	// 1 gate; caller calls it 10 times (50 ops after inlining) with a
	// tiny FTh that still covers the gate count.
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, nil)
	leaf.Gate(qasm.T, 0)
	p.Add(leaf)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.CallN("leaf", 100, ir.Range{Start: 0, Len: 1})
	p.Add(main)
	// FTh 100 covers main (100 gates); guard allows 4*FTh = 400 > 100,
	// so this flattens fine.
	if _, err := flatten.Program(p, flatten.Options{Threshold: 100}); err != nil {
		t.Fatalf("legit flatten rejected: %v", err)
	}
	if len(p.Modules["main"].Ops) != 100 {
		t.Errorf("ops: %d", len(p.Modules["main"].Ops))
	}
}

func TestFlattenStatsFields(t *testing.T) {
	p := buildProgram()
	stats, err := flatten.Program(p, flatten.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Threshold != flatten.DefaultThreshold {
		t.Errorf("threshold: %d", stats.Threshold)
	}
	if stats.InlinedCallOps == 0 {
		t.Error("no inlined ops recorded")
	}
}

func TestFlattenInvalidProgram(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Call("ghost", ir.Range{Start: 0, Len: 1})
	p.Add(m)
	if _, err := flatten.Program(p, flatten.Options{}); err == nil {
		t.Error("missing callee not reported")
	}
}
