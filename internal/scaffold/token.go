// Package scaffold implements the lexical layer of Scaffold-lite, the
// C-like quantum programming language accepted by the toolflow front end.
// It is this reproduction's substitute for the Scaffold language the
// paper's ScaffCC compiler consumes.
package scaffold

import "fmt"

// Kind classifies a token.
type Kind uint8

const (
	EOF Kind = iota
	Ident
	Int
	Float
	// Keywords.
	KwModule
	KwQbit
	KwCbit
	KwFor
	KwIf
	KwElse
	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Colon
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	PlusPlus
	Shl
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "integer", Float: "float",
	KwModule: "'module'", KwQbit: "'qbit'", KwCbit: "'cbit'",
	KwFor: "'for'", KwIf: "'if'", KwElse: "'else'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Comma: "','", Semicolon: "';'",
	Colon: "':'", Assign: "'='", Plus: "'+'", Minus: "'-'", Star: "'*'",
	Slash: "'/'", Percent: "'%'", Lt: "'<'", Le: "'<='", Gt: "'>'",
	Ge: "'>='", EqEq: "'=='", NotEq: "'!='", PlusPlus: "'++'", Shl: "'<<'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"module": KwModule,
	"qbit":   KwQbit,
	"cbit":   KwCbit,
	"for":    KwFor,
	"if":     KwIf,
	"else":   KwElse,
}

// Pos locates a token in the source text.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}
