package scaffold

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("module main() { qbit q[4]; H(q[0]); }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KwModule, Ident, LParen, RParen, LBrace,
		KwQbit, Ident, LBracket, Int, RBracket, Semicolon,
		Ident, LParen, Ident, LBracket, Int, RBracket, RParen, Semicolon,
		RBrace, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("+ - * / % << < <= > >= == != ++ = : ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Plus, Minus, Star, Slash, Percent, Shl, Lt, Le, Gt, Ge, EqEq, NotEq, PlusPlus, Assign, Colon, Comma, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"42", Int},
		{"0", Int},
		{"3.14", Float},
		{"0.5", Float},
		{"1e10", Float},
		{"2.5e-3", Float},
		{"7E+2", Float},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q: got %v %q", c.src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestLexExponentBackout(t *testing.T) {
	// "1e" followed by an identifier char is Int then Ident.
	toks, err := Lex("3express")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Int || toks[0].Text != "3" {
		t.Fatalf("got %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != Ident || toks[1].Text != "express" {
		t.Fatalf("got %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a // line comment\nb /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c should be on line 3, got %d", toks[2].Pos.Line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("a /* never ends"); err == nil {
		t.Error("accepted unterminated block comment")
	}
}

func TestLexKeywords(t *testing.T) {
	toks, err := Lex("module qbit cbit for if else modular")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwModule, KwQbit, KwCbit, KwFor, KwIf, KwElse, Ident}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("accepted '@'")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("accepted bare '!'")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

// Property: lexing never panics and always terminates with EOF on
// printable-ASCII inputs built from the language alphabet.
func TestLexQuickTermination(t *testing.T) {
	alphabet := "abqmodule fori()[]{};,+-*/%<>=!0123456789. \n\t"
	f := func(seed []byte) bool {
		var sb strings.Builder
		for _, b := range seed {
			sb.WriteByte(alphabet[int(b)%len(alphabet)])
		}
		toks, err := Lex(sb.String())
		if err != nil {
			return true // errors are fine; crashes are not
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
