package scaffold

import (
	"fmt"
	"strings"
)

// Lexer converts Scaffold-lite source text into tokens. It supports //
// line comments and /* */ block comments.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, ending with an EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return fmt.Errorf("scaffold: %s: unterminated block comment", start)
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && (isIdentStart(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: pos}, nil
	case isDigit(c), c == '.' && isDigit(lx.peek2()):
		return lx.lexNumber(pos)
	}
	lx.advance()
	two := func(next byte, withKind, withoutKind Kind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: withKind, Text: string([]byte{c, next}), Pos: pos}
		}
		return Token{Kind: withoutKind, Text: string(c), Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Text: ")", Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Text: "}", Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Text: "[", Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Text: "]", Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Text: ",", Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Text: ";", Pos: pos}, nil
	case ':':
		return Token{Kind: Colon, Text: ":", Pos: pos}, nil
	case '+':
		return two('+', PlusPlus, Plus), nil
	case '-':
		return Token{Kind: Minus, Text: "-", Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Text: "*", Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Text: "/", Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Text: "%", Pos: pos}, nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: Shl, Text: "<<", Pos: pos}, nil
		}
		return two('=', Le, Lt), nil
	case '>':
		return two('=', Ge, Gt), nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: NotEq, Text: "!=", Pos: pos}, nil
		}
	}
	return Token{}, fmt.Errorf("scaffold: %s: unexpected character %q", pos, string(c))
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	kind := Int
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && isDigit(lx.peek2()) {
		kind = Float
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' {
		saveOff, saveCol := lx.off, lx.col
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			kind = Float
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			// Not an exponent after all; back out (identifier follows).
			lx.off, lx.col = saveOff, saveCol
		}
	}
	text := lx.src[start:lx.off]
	if strings.HasSuffix(text, ".") {
		return Token{}, fmt.Errorf("scaffold: %s: malformed number %q", pos, text)
	}
	return Token{Kind: kind, Text: text, Pos: pos}, nil
}
