// Package soak is the long-running determinism and legality harness:
// it sweeps seeded random hierarchical programs (verify.RandomProgram)
// through the language front end, every registered scheduler, the
// legality oracle, the serialization codecs and the full evaluation
// engine, asserting on every instance that
//
//   - Scaffold rendering round-trips: parse + sema + lower of the
//     generated source reproduces the exact program fingerprint;
//   - IR and schedule JSON export/import are lossless (fingerprint- and
//     digest-identical);
//   - scheduling is deterministic: repeated runs yield bit-identical
//     schedules (verify.ScheduleDigest);
//   - every schedule passes the independent Multi-SIMD legality oracle
//     with move-list consistency (verify.Full);
//   - engine metrics are bit-identical across worker counts and across
//     cache cold/warm runs, with the in-engine oracle (Verify) on.
//
// Failures carry the derived seed and a qsoak command line that replays
// exactly the failing instance, so a multi-hour sweep never has to be
// rerun to debug one program.
package soak

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"reflect"
	"strings"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"

	// The harness sweeps every registered scheduler.
	_ "github.com/scaffold-go/multisimd/internal/lpfs"
	_ "github.com/scaffold-go/multisimd/internal/rcp"
)

// Options configures a sweep. The zero value is the full acceptance
// profile: 200 programs × 3 seeds × all registered schedulers.
type Options struct {
	// Programs is the number of program indices to sweep (default 200).
	Programs int
	// Seeds is the number of seed lanes per program index (default 3).
	Seeds int
	// Base offsets the derived seed space (default 1). Instance
	// (program i, lane j) generates from seed Base + i*1000003 + j, so
	// any instance replays in isolation.
	Base int64
	// StartProgram / StartSeed shift the sweep window without changing
	// per-instance seeds — the replay knobs qsoak repro lines use.
	StartProgram int
	StartSeed    int

	// Gen shapes the generated programs.
	Gen verify.ProgramGenOptions

	// Schedulers lists registry names to sweep; empty means every
	// registered scheduler.
	Schedulers []string
	// Workers lists the engine worker counts cross-checked for metric
	// identity; empty means {1, 4}.
	Workers []int

	// CacheDir, when non-empty, adds a persistent-cache lane to every
	// engine check: evaluate into a disk-backed cache rooted here, close
	// it (a simulated process exit), reopen the same directory with cold
	// memory and evaluate again. The restarted run must return metrics
	// bit-identical to every in-memory run — the determinism contract of
	// the persistent result store.
	CacheDir string

	// MaxFailures bounds recorded failures (default 25); the sweep
	// stops early once reached.
	MaxFailures int

	// Progress, when non-nil, is called after every program index
	// completes with a running snapshot of the sweep, so long runs can
	// report periodically (see cmd/qsoak) without the harness deciding
	// a cadence.
	Progress func(ProgressUpdate)
}

// ProgressUpdate is the running state handed to Options.Progress after
// each program index: position in the sweep plus the work counters
// accumulated so far (the same counters the final Result reports).
type ProgressUpdate struct {
	// Done / Total are completed and planned program indices.
	Done, Total int
	// Instances, Schedules and Evaluations mirror Result's counters at
	// this point in the sweep.
	Instances   int
	Schedules   int64
	Evaluations int64
	// Failures counts recorded plus truncated failures so far.
	Failures int
}

func (o Options) programs() int {
	if o.Programs <= 0 {
		return 200
	}
	return o.Programs
}

func (o Options) seeds() int {
	if o.Seeds <= 0 {
		return 3
	}
	return o.Seeds
}

func (o Options) base() int64 {
	if o.Base == 0 {
		return 1
	}
	return o.Base
}

func (o Options) maxFailures() int {
	if o.MaxFailures <= 0 {
		return 25
	}
	return o.MaxFailures
}

func (o Options) workers() []int {
	if len(o.Workers) == 0 {
		return []int{1, 4}
	}
	return o.Workers
}

func (o Options) schedulers() []string {
	if len(o.Schedulers) == 0 {
		return schedule.Names()
	}
	return o.Schedulers
}

// Failure is one broken invariant, with everything needed to replay it.
type Failure struct {
	Program   int    `json:"program"`
	SeedLane  int    `json:"seed_lane"`
	Seed      int64  `json:"seed"`
	Scheduler string `json:"scheduler,omitempty"`
	Stage     string `json:"stage"`
	Detail    string `json:"detail"`
	Repro     string `json:"repro"`
}

// Result summarizes a sweep.
type Result struct {
	// Instances is the number of generated (program, seed) instances.
	Instances int `json:"instances"`
	// RoundTrips counts successful source + IR round-trip checks.
	RoundTrips int `json:"round_trips"`
	// Schedules counts leaf schedules built and oracle-verified.
	Schedules int64 `json:"schedules"`
	// Evaluations counts full engine runs.
	Evaluations int64 `json:"evaluations"`
	// Digest folds every leaf schedule digest in sweep order — two runs
	// of the same sweep must produce the identical value.
	Digest uint64 `json:"digest"`
	// TruncatedFailures counts failures beyond MaxFailures that were
	// not recorded.
	TruncatedFailures int       `json:"truncated_failures,omitempty"`
	Failures          []Failure `json:"failures,omitempty"`
}

// Failed reports whether the sweep broke any invariant.
func (r *Result) Failed() bool { return len(r.Failures) > 0 || r.TruncatedFailures > 0 }

// SeedFor returns the generation seed of instance (program, lane) under
// base — the derivation both Run and the repro lines rely on.
func SeedFor(base int64, program, lane int) int64 {
	return base + int64(program)*1000003 + int64(lane)
}

// instanceConfig rotates the machine and movement model across
// instances, mirroring the differential harness's rotation. Wide gate
// mixes skip d = 2 (three-qubit gates cannot fit).
func instanceConfig(n int, wide bool) (k, d int, copts comm.Options) {
	k = []int{1, 2, 3, 4, 8}[n%5]
	d = []int{0, 0, 2, 4}[n%4]
	if wide && d == 2 {
		d = 3
	}
	switch n % 3 {
	case 1:
		copts.LocalCapacity = 1 + n%4
	case 2:
		copts.LocalCapacity = -1
	}
	if n%7 == 3 {
		copts.NoOverlap = true
	}
	if n%11 == 5 {
		copts.EPRBandwidth = 1 + n%3
	}
	return k, d, copts
}

// Run executes the sweep.
func Run(opts Options) (*Result, error) {
	scheds := make([]schedule.Scheduler, 0, len(opts.schedulers()))
	for _, name := range opts.schedulers() {
		s, err := core.SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, s)
	}
	if len(scheds) == 0 {
		return nil, fmt.Errorf("soak: no schedulers to sweep")
	}
	res := &Result{}
	digest := fnv.New64a()
	nPrograms, nSeeds := opts.programs(), opts.seeds()

	fail := func(pi, si int, sched, stage, detail string) {
		if len(res.Failures) >= opts.maxFailures() {
			res.TruncatedFailures++
			return
		}
		res.Failures = append(res.Failures, Failure{
			Program:   pi,
			SeedLane:  si,
			Seed:      SeedFor(opts.base(), pi, si),
			Scheduler: sched,
			Stage:     stage,
			Detail:    detail,
			Repro:     opts.Repro(pi, si),
		})
	}

	for i := 0; i < nPrograms; i++ {
		pi := opts.StartProgram + i
		for j := 0; j < nSeeds; j++ {
			si := opts.StartSeed + j
			if len(res.Failures) >= opts.maxFailures() {
				res.TruncatedFailures++
				continue
			}
			res.Instances++
			seed := SeedFor(opts.base(), pi, si)
			rng := rand.New(rand.NewSource(seed))
			p := verify.RandomProgram(rng, opts.Gen)
			if err := p.Validate(); err != nil {
				fail(pi, si, "", "generate", err.Error())
				continue
			}
			k, d, copts := instanceConfig(pi*31+si, opts.Gen.Wide)

			if ok := checkRoundTrips(p, func(stage, detail string) { fail(pi, si, "", stage, detail) }); ok {
				res.RoundTrips++
			}

			leaves, err := materializedLeaves(p)
			if err != nil {
				fail(pi, si, "", "materialize", err.Error())
				continue
			}
			for _, sched := range scheds {
				n, err := checkSchedules(leaves, sched, k, d, copts, digest)
				res.Schedules += n
				if err != nil {
					fail(pi, si, sched.Name(), "schedule", err.Error())
					continue
				}
				n2, err := checkEngine(p, sched, k, d, copts, opts.workers(), opts.CacheDir)
				res.Evaluations += n2
				if err != nil {
					fail(pi, si, sched.Name(), "engine", err.Error())
				}
			}
		}
		if opts.Progress != nil {
			opts.Progress(ProgressUpdate{
				Done: i + 1, Total: nPrograms,
				Instances:   res.Instances,
				Schedules:   res.Schedules,
				Evaluations: res.Evaluations,
				Failures:    len(res.Failures) + res.TruncatedFailures,
			})
		}
	}
	res.Digest = digest.Sum64()
	return res, nil
}

// Repro renders the qsoak command line that replays exactly instance
// (program pi, lane si) of this sweep.
func (o Options) Repro(pi, si int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/qsoak -base %d -start-program %d -programs 1 -start-seed %d -seeds 1", o.base(), pi, si)
	g := o.Gen
	if g.Depth > 0 {
		fmt.Fprintf(&b, " -depth %d", g.Depth)
	}
	if g.ModulesPerLevel > 0 {
		fmt.Fprintf(&b, " -modules %d", g.ModulesPerLevel)
	}
	if g.Fanout > 0 {
		fmt.Fprintf(&b, " -fanout %d", g.Fanout)
	}
	if g.LeafOps > 0 {
		fmt.Fprintf(&b, " -leaf-ops %d", g.LeafOps)
	}
	if g.BodyGates > 0 {
		fmt.Fprintf(&b, " -body-gates %d", g.BodyGates)
	}
	if g.MaxRegSize > 0 {
		fmt.Fprintf(&b, " -max-reg %d", g.MaxRegSize)
	}
	fmt.Fprintf(&b, " -loops=%v -wide=%v -measure=%v", g.Loops, g.Wide, g.Measure)
	if len(o.Schedulers) > 0 {
		fmt.Fprintf(&b, " -sched %s", strings.Join(o.Schedulers, ","))
	}
	if len(o.Workers) > 0 {
		ws := make([]string, len(o.Workers))
		for i, w := range o.Workers {
			ws[i] = fmt.Sprint(w)
		}
		fmt.Fprintf(&b, " -workers %s", strings.Join(ws, ","))
	}
	return b.String()
}

// checkRoundTrips asserts the two lossless-serialization invariants:
// Scaffold source through the front end, and IR JSON through the codec.
func checkRoundTrips(p *ir.Program, fail func(stage, detail string)) bool {
	ok := true
	src, err := verify.ProgramScaffold(p)
	if err != nil {
		fail("render", err.Error())
		ok = false
	} else {
		q, err := core.Frontend(src, core.PipelineOptions{})
		if err != nil {
			fail("frontend", err.Error())
			ok = false
		} else if p.Fingerprint() != q.Fingerprint() {
			fail("source-roundtrip", fmt.Sprintf("fingerprint drifted %s -> %s", p.Fingerprint(), q.Fingerprint()))
			ok = false
		}
	}
	var buf bytes.Buffer
	if err := ir.WriteJSON(&buf, p); err != nil {
		fail("ir-export", err.Error())
		return false
	}
	q, err := ir.ReadJSON(&buf)
	if err != nil {
		fail("ir-import", err.Error())
		return false
	}
	if p.Fingerprint() != q.Fingerprint() {
		fail("ir-roundtrip", fmt.Sprintf("fingerprint drifted %s -> %s", p.Fingerprint(), q.Fingerprint()))
		return false
	}
	return ok
}

// materializedLeaves expands every reachable leaf for direct
// fine-grained scheduling.
func materializedLeaves(p *ir.Program) ([]*ir.Module, error) {
	order, err := p.Topo()
	if err != nil {
		return nil, err
	}
	var leaves []*ir.Module
	for _, name := range order {
		m := p.Modules[name]
		if !m.IsLeaf() {
			continue
		}
		mat, err := m.Materialize(4 << 20)
		if err != nil {
			return nil, fmt.Errorf("leaf %s: %w", name, err)
		}
		leaves = append(leaves, mat)
	}
	return leaves, nil
}

// checkSchedules schedules every leaf twice with one scheduler,
// asserting digest-identical repeats, oracle legality with move-list
// consistency, and a lossless schedule JSON round trip. Each verified
// digest folds into the sweep digest.
func checkSchedules(leaves []*ir.Module, sched schedule.Scheduler, k, d int, copts comm.Options, sweep io.Writer) (int64, error) {
	var n int64
	for _, m := range leaves {
		g, err := dag.Build(m)
		if err != nil {
			return n, fmt.Errorf("leaf %s: dag: %w", m.Name, err)
		}
		s, err := sched.Schedule(m, g, k, d)
		if err != nil {
			return n, fmt.Errorf("leaf %s k=%d d=%d: %w", m.Name, k, d, err)
		}
		n++
		dig := verify.ScheduleDigest(s)
		again, err := sched.Schedule(m, g, k, d)
		if err != nil {
			return n, fmt.Errorf("leaf %s k=%d d=%d rerun: %w", m.Name, k, d, err)
		}
		if rd := verify.ScheduleDigest(again); rd != dig {
			return n, fmt.Errorf("leaf %s k=%d d=%d: nondeterministic schedule: digest %016x then %016x", m.Name, k, d, dig, rd)
		}
		res, err := comm.Analyze(s, copts)
		if err != nil {
			return n, fmt.Errorf("leaf %s: comm: %w", m.Name, err)
		}
		if err := verify.Full(s, g, res, copts); err != nil {
			return n, fmt.Errorf("leaf %s k=%d d=%d opts=%+v: oracle: %w", m.Name, k, d, copts, err)
		}
		var buf bytes.Buffer
		if err := schedule.WriteJSON(&buf, s); err != nil {
			return n, fmt.Errorf("leaf %s: schedule export: %w", m.Name, err)
		}
		loaded, err := schedule.ReadJSON(&buf, m)
		if err != nil {
			return n, fmt.Errorf("leaf %s: schedule import: %w", m.Name, err)
		}
		if ld := verify.ScheduleDigest(loaded); ld != dig {
			return n, fmt.Errorf("leaf %s: schedule JSON round trip drifted: digest %016x -> %016x", m.Name, dig, ld)
		}
		var db [8]byte
		for i := 0; i < 8; i++ {
			db[i] = byte(dig >> (8 * i))
		}
		sweep.Write(db[:])
	}
	return n, nil
}

// checkEngine runs the full evaluation engine over the hierarchical
// program — cold and warm cache at every requested worker count, with
// the in-engine legality oracle on — and asserts every run returns
// bit-identical metrics. A non-empty cacheDir adds the persistent lane:
// populate a disk-backed cache, close it, reopen the directory with
// cold memory (a simulated restart) and demand the same metrics again.
func checkEngine(p *ir.Program, sched schedule.Scheduler, k, d int, copts comm.Options, workers []int, cacheDir string) (int64, error) {
	var ref *core.Metrics
	var refDesc string
	var n int64
	check := func(m *core.Metrics, desc string) error {
		if ref == nil {
			ref = m
			refDesc = desc
			return nil
		}
		if !reflect.DeepEqual(ref, m) {
			return fmt.Errorf("metrics diverge: %s gave %+v, %s gave %+v", refDesc, *ref, desc, *m)
		}
		return nil
	}
	for _, w := range workers {
		cache := core.NewEvalCache()
		for run := 0; run < 2; run++ {
			m, err := core.Evaluate(p, core.EvalOptions{
				Scheduler: sched,
				K:         k,
				D:         d,
				Comm:      copts,
				Verify:    true,
				Workers:   w,
				Cache:     cache,
			})
			n++
			state := "cold"
			if run == 1 {
				state = "warm"
			}
			if err != nil {
				return n, fmt.Errorf("evaluate workers=%d cache=%s k=%d d=%d: %w", w, state, k, d, err)
			}
			if err := check(m, fmt.Sprintf("workers=%d cache=%s", w, state)); err != nil {
				return n, err
			}
		}
	}
	if cacheDir != "" {
		for run := 0; run < 2; run++ {
			// Opening the same directory twice — with a Close in between —
			// is the restart: run 0 populates the disk layer, run 1 starts
			// with cold memory and must be served from it.
			pc, err := core.OpenEvalCache(core.CacheConfig{Dir: cacheDir})
			if err != nil {
				return n, fmt.Errorf("persistent cache %s: %w", cacheDir, err)
			}
			m, err := core.Evaluate(p, core.EvalOptions{
				Scheduler: sched,
				K:         k,
				D:         d,
				Comm:      copts,
				Verify:    true,
				Cache:     pc,
			})
			pc.Close()
			n++
			state := "persist-cold"
			if run == 1 {
				state = "persist-restart"
			}
			if err != nil {
				return n, fmt.Errorf("evaluate cache=%s k=%d d=%d: %w", state, k, d, err)
			}
			if err := check(m, fmt.Sprintf("cache=%s", state)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
