package soak

import (
	"testing"
	"time"
)

func TestRateEstimatorSteadyRate(t *testing.T) {
	e := NewRateEstimator(time.Minute)
	t0 := time.Unix(1000, 0)
	for i := 0; i <= 10; i++ {
		e.Observe(t0.Add(time.Duration(i)*time.Second), float64(5*i))
	}
	if r := e.Rate(); r < 4.99 || r > 5.01 {
		t.Fatalf("rate = %v, want 5/s", r)
	}
	d, ok := e.ETA(50)
	if !ok || d != 10*time.Second {
		t.Fatalf("ETA(50) = %v, %v; want 10s, true", d, ok)
	}
}

func TestRateEstimatorWindowTracksSpeedup(t *testing.T) {
	// 1/s for a minute, then 10/s: a 10s window must report the recent
	// rate, not the lifetime average.
	e := NewRateEstimator(10 * time.Second)
	t0 := time.Unix(1000, 0)
	v := 0.0
	for i := 0; i < 60; i++ {
		e.Observe(t0.Add(time.Duration(i)*time.Second), v)
		v++
	}
	for i := 60; i < 80; i++ {
		e.Observe(t0.Add(time.Duration(i)*time.Second), v)
		v += 10
	}
	if r := e.Rate(); r < 9.5 {
		t.Fatalf("windowed rate = %v, want ~10/s after the speedup", r)
	}
}

func TestRateEstimatorKeepsTwoPastWindow(t *testing.T) {
	// Observation cadence slower than the window: the estimator keeps
	// the last pair so the rate never collapses to "unknown".
	e := NewRateEstimator(time.Second)
	t0 := time.Unix(1000, 0)
	e.Observe(t0, 0)
	e.Observe(t0.Add(30*time.Second), 60)
	e.Observe(t0.Add(60*time.Second), 120)
	if r := e.Rate(); r < 1.99 || r > 2.01 {
		t.Fatalf("rate = %v, want 2/s from the retained pair", r)
	}
}

func TestRateEstimatorUnknowns(t *testing.T) {
	e := NewRateEstimator(0)
	if r := e.Rate(); r != 0 {
		t.Fatalf("empty estimator rate = %v", r)
	}
	if _, ok := e.ETA(10); ok {
		t.Fatal("ETA answered with no observations")
	}
	t0 := time.Unix(1000, 0)
	e.Observe(t0, 5)
	if _, ok := e.ETA(10); ok {
		t.Fatal("ETA answered with one observation")
	}
	e.Observe(t0.Add(time.Second), 10)
	if _, ok := e.ETA(-1); ok {
		t.Fatal("ETA answered for negative remaining work")
	}
}
