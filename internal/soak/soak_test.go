package soak_test

import (
	"os"
	"strconv"
	"testing"

	"github.com/scaffold-go/multisimd/internal/soak"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// envInt reads an integer knob, so CI profiles scale the sweep without
// code changes (SOAK_PROGRAMS / SOAK_SEEDS).
func envInt(t *testing.T, name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("%s=%q: want a positive integer", name, v)
	}
	return n
}

// TestSoak is the deterministic short profile: every soak invariant
// over a sweep small enough for tier-1 runs. CI's soak job raises the
// knobs (SOAK_PROGRAMS=50 under -race on PRs; hundreds via
// workflow_dispatch); the full acceptance profile is `go run
// ./cmd/qsoak` with its 200×3 defaults.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sweep skipped in -short mode")
	}
	opts := soak.Options{
		Programs: envInt(t, "SOAK_PROGRAMS", 12),
		Seeds:    envInt(t, "SOAK_SEEDS", 2),
		Gen:      verify.ProgramGenOptions{Loops: true, Wide: true, Measure: true},
	}
	res, err := soak.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("program %d lane %d (seed %d) scheduler %q stage %s: %s\nreplay: %s",
			f.Program, f.SeedLane, f.Seed, f.Scheduler, f.Stage, f.Detail, f.Repro)
	}
	if res.TruncatedFailures > 0 {
		t.Errorf("%d further failures truncated", res.TruncatedFailures)
	}
	if res.Instances != opts.Programs*opts.Seeds {
		t.Errorf("swept %d instances, want %d", res.Instances, opts.Programs*opts.Seeds)
	}
	if res.RoundTrips != res.Instances {
		t.Errorf("round trips %d of %d instances", res.RoundTrips, res.Instances)
	}
	if res.Schedules == 0 || res.Evaluations == 0 {
		t.Errorf("degenerate sweep: %d schedules, %d evaluations", res.Schedules, res.Evaluations)
	}
	t.Logf("soak: %d instances, %d round trips, %d schedules, %d evaluations, digest %016x",
		res.Instances, res.RoundTrips, res.Schedules, res.Evaluations, res.Digest)
}

// TestSoakSweepDeterministic runs the same small sweep twice and pins
// the aggregate digest: the sweep itself — generation, scheduling,
// digesting — must be a pure function of its options.
func TestSoakSweepDeterministic(t *testing.T) {
	opts := soak.Options{Programs: 4, Seeds: 2, Gen: verify.ProgramGenOptions{Loops: true}}
	a, err := soak.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := soak.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failed() || b.Failed() {
		t.Fatalf("sweep failed: %+v / %+v", a.Failures, b.Failures)
	}
	if a.Digest != b.Digest {
		t.Fatalf("sweep digest not reproducible: %016x then %016x", a.Digest, b.Digest)
	}
	if a.Schedules != b.Schedules || a.Evaluations != b.Evaluations {
		t.Fatalf("sweep counters not reproducible: %+v then %+v", a, b)
	}
}

// TestSoakWindowedReplayMatches pins the replay contract behind every
// repro line: sweeping a 1×1 window with -start-program/-start-seed
// reproduces the same per-instance work (seed derivation included) as
// the full sweep that contained it.
func TestSoakWindowedReplayMatches(t *testing.T) {
	gen := verify.ProgramGenOptions{Loops: true}
	full, err := soak.Run(soak.Options{Programs: 3, Seeds: 2, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	if full.Failed() {
		t.Fatalf("full sweep failed: %+v", full.Failures)
	}
	if soak.SeedFor(1, 2, 1) != 1+2*1000003+1 {
		t.Fatalf("seed derivation changed: SeedFor(1,2,1) = %d", soak.SeedFor(1, 2, 1))
	}
	// Replaying each window and folding the digests in sweep order must
	// reproduce the full sweep's digest.
	var windows []*soak.Result
	for pi := 0; pi < 3; pi++ {
		for si := 0; si < 2; si++ {
			w, err := soak.Run(soak.Options{Programs: 1, Seeds: 1, StartProgram: pi, StartSeed: si, Gen: gen})
			if err != nil {
				t.Fatal(err)
			}
			if w.Failed() {
				t.Fatalf("window (%d,%d) failed: %+v", pi, si, w.Failures)
			}
			windows = append(windows, w)
		}
	}
	var schedules int64
	for _, w := range windows {
		schedules += w.Schedules
	}
	if schedules != full.Schedules {
		t.Fatalf("windowed replay built %d schedules, full sweep %d", schedules, full.Schedules)
	}
}

// TestSoakPersistentCacheLane runs a small sweep with the restart lane
// on: every engine check additionally populates a disk-backed cache,
// closes it and re-evaluates through a reopened cache with cold memory.
// The lane adds evaluations but must not add failures or perturb the
// schedule digest, and a rerun over the now-populated directory must
// agree — disk-served metrics are bit-identical across processes.
func TestSoakPersistentCacheLane(t *testing.T) {
	gen := verify.ProgramGenOptions{Loops: true}
	base, err := soak.Run(soak.Options{Programs: 2, Seeds: 1, Workers: []int{1}, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	if base.Failed() {
		t.Fatalf("baseline sweep failed: %+v", base.Failures)
	}

	dir := t.TempDir()
	withDisk, err := soak.Run(soak.Options{Programs: 2, Seeds: 1, Workers: []int{1}, Gen: gen, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if withDisk.Failed() {
		t.Fatalf("persistent lane failed: %+v", withDisk.Failures)
	}
	if withDisk.Evaluations <= base.Evaluations {
		t.Errorf("restart lane added no evaluations: %d vs %d", withDisk.Evaluations, base.Evaluations)
	}
	if withDisk.Digest != base.Digest {
		t.Errorf("persistent lane perturbed the sweep digest: %016x vs %016x", withDisk.Digest, base.Digest)
	}

	// Second process over the same directory: everything it evaluates is
	// already on disk, and the results must still agree.
	again, err := soak.Run(soak.Options{Programs: 2, Seeds: 1, Workers: []int{1}, Gen: gen, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if again.Failed() {
		t.Fatalf("second sweep over populated dir failed: %+v", again.Failures)
	}
	if again.Digest != base.Digest {
		t.Errorf("populated-dir sweep drifted: %016x vs %016x", again.Digest, base.Digest)
	}
}

// TestSoakReproLine checks the failure replay command round-trips the
// sweep's generator and window configuration.
func TestSoakReproLine(t *testing.T) {
	opts := soak.Options{
		Base:       7,
		Gen:        verify.ProgramGenOptions{Depth: 3, Loops: true, Wide: true},
		Schedulers: []string{"lpfs"},
	}
	got := opts.Repro(12, 2)
	want := "go run ./cmd/qsoak -base 7 -start-program 12 -programs 1 -start-seed 2 -seeds 1 -depth 3 -loops=true -wide=true -measure=false -sched lpfs"
	if got != want {
		t.Fatalf("repro line drifted:\n got %q\nwant %q", got, want)
	}
}
