package soak

// Rolling throughput estimation for long sweeps. The generator's
// program sizes vary wildly, so "average since start" lies for hours
// after a slow stretch; a windowed rate tracks what the sweep is doing
// now, which is what an ETA should extrapolate from.

import "time"

// rateObs is one (time, counter) observation.
type rateObs struct {
	t time.Time
	v float64
}

// RateEstimator turns observations of a monotonically increasing
// counter into a rolling rate over a fixed wall-clock window. The zero
// value is unusable; use NewRateEstimator.
type RateEstimator struct {
	window time.Duration
	obs    []rateObs // oldest first, spans at most window
}

// DefaultRateWindow is the rolling window when NewRateEstimator gets a
// non-positive one.
const DefaultRateWindow = time.Minute

// NewRateEstimator returns an estimator with the given rolling window
// (non-positive selects DefaultRateWindow).
func NewRateEstimator(window time.Duration) *RateEstimator {
	if window <= 0 {
		window = DefaultRateWindow
	}
	return &RateEstimator{window: window}
}

// Observe records the counter's value at t. Observations must arrive in
// time order; ones older than the window fall off the front, but the
// estimator always keeps at least two so Rate stays answerable on
// cadences slower than the window.
func (e *RateEstimator) Observe(t time.Time, v float64) {
	e.obs = append(e.obs, rateObs{t, v})
	cut := t.Add(-e.window)
	i := 0
	for i < len(e.obs)-2 && e.obs[i].t.Before(cut) {
		i++
	}
	if i > 0 {
		e.obs = append(e.obs[:0], e.obs[i:]...)
	}
}

// Rate is the windowed throughput in counter units per second: the
// value delta across the retained observations over their time span.
// Zero until two observations exist (or when time stands still).
func (e *RateEstimator) Rate() float64 {
	n := len(e.obs)
	if n < 2 {
		return 0
	}
	dt := e.obs[n-1].t.Sub(e.obs[0].t).Seconds()
	dv := e.obs[n-1].v - e.obs[0].v
	if dt <= 0 || dv < 0 {
		return 0
	}
	return dv / dt
}

// ETA extrapolates how long the remaining counter units take at the
// current rolling rate. ok is false while the rate is unknown (fewer
// than two observations, a stall) or remaining is negative.
func (e *RateEstimator) ETA(remaining float64) (time.Duration, bool) {
	r := e.Rate()
	if r <= 0 || remaining < 0 {
		return 0, false
	}
	return time.Duration(remaining / r * float64(time.Second)), true
}
