// Package qasm defines the logical quantum gate vocabulary shared by the
// whole toolflow, together with QASM-HL text emission and parsing.
//
// The instruction set follows the paper's target: the Clifford group
// (CNOT, H, S) plus T for universality, the Paulis, preparation and
// measurement, and the "wide" gates (Toffoli, Fredkin, arbitrary-angle
// rotations) that exist in the source vocabulary and are lowered to the
// primitive set by the decomposition stage.
package qasm

import "fmt"

// Opcode identifies a logical gate. Values are stable and ordered so that
// schedulers can use them as dense array indices.
type Opcode uint8

const (
	// Single-qubit primitives.
	X Opcode = iota
	Y
	Z
	H
	S
	Sdag
	T
	Tdag
	// Preparation and measurement.
	PrepZ
	MeasZ
	// Two-qubit primitives.
	CNOT
	CZ
	Swap
	// Wide gates: removed by decomposition before scheduling-for-hardware,
	// but schedulable at the logical level.
	Toffoli
	Fredkin
	// Arbitrary-angle rotations (decomposed via the SQCT substitute).
	Rx
	Ry
	Rz
	// Controlled rotations (used by phase estimation benchmarks).
	CRz

	NumOpcodes = int(CRz) + 1
)

var opNames = [NumOpcodes]string{
	X: "X", Y: "Y", Z: "Z", H: "H", S: "S", Sdag: "Sdag", T: "T", Tdag: "Tdag",
	PrepZ: "PrepZ", MeasZ: "MeasZ",
	CNOT: "CNOT", CZ: "CZ", Swap: "Swap",
	Toffoli: "Toffoli", Fredkin: "Fredkin",
	Rx: "Rx", Ry: "Ry", Rz: "Rz", CRz: "CRz",
}

var opArity = [NumOpcodes]int{
	X: 1, Y: 1, Z: 1, H: 1, S: 1, Sdag: 1, T: 1, Tdag: 1,
	PrepZ: 1, MeasZ: 1,
	CNOT: 2, CZ: 2, Swap: 2,
	Toffoli: 3, Fredkin: 3,
	Rx: 1, Ry: 1, Rz: 1, CRz: 2,
}

var opRotation = [NumOpcodes]bool{Rx: true, Ry: true, Rz: true, CRz: true}

// Primitive gates are those directly expressible in QASM-HL after
// decomposition (the universal Clifford+T set plus prepare/measure).
var opPrimitive = [NumOpcodes]bool{
	X: true, Y: true, Z: true, H: true, S: true, Sdag: true, T: true, Tdag: true,
	PrepZ: true, MeasZ: true, CNOT: true, CZ: true, Swap: false,
}

func (op Opcode) String() string {
	if int(op) < NumOpcodes {
		return opNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// Arity reports the number of qubit operands the gate takes.
func (op Opcode) Arity() int {
	if int(op) < NumOpcodes {
		return opArity[op]
	}
	return 0
}

// IsRotation reports whether the gate carries an angle parameter.
func (op Opcode) IsRotation() bool {
	return int(op) < NumOpcodes && opRotation[op]
}

// IsPrimitive reports whether the gate belongs to the post-decomposition
// QASM target set.
func (op Opcode) IsPrimitive() bool {
	return int(op) < NumOpcodes && opPrimitive[op]
}

// Valid reports whether op is a known opcode.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// Adjoint returns the opcode of the Hermitian adjoint for self-describing
// gates (S/Sdag, T/Tdag swap; self-adjoint gates map to themselves).
// Rotations stay the same opcode: callers negate the angle.
func (op Opcode) Adjoint() Opcode {
	switch op {
	case S:
		return Sdag
	case Sdag:
		return S
	case T:
		return Tdag
	case Tdag:
		return T
	default:
		return op
	}
}

// ByName maps a gate mnemonic to its opcode. The second result is false
// when the name is unknown.
func ByName(name string) (Opcode, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for i := 0; i < NumOpcodes; i++ {
		m[opNames[i]] = Opcode(i)
	}
	return m
}()
