package qasm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeMetadata(t *testing.T) {
	for i := 0; i < NumOpcodes; i++ {
		op := Opcode(i)
		if op.String() == "" {
			t.Errorf("opcode %d has no name", i)
		}
		if op.Arity() < 1 || op.Arity() > 3 {
			t.Errorf("%s: arity %d out of range", op, op.Arity())
		}
		got, ok := ByName(op.String())
		if !ok || got != op {
			t.Errorf("ByName(%q) = %v, %v", op.String(), got, ok)
		}
		if !op.Valid() {
			t.Errorf("%s reported invalid", op)
		}
	}
	if Opcode(200).Valid() {
		t.Error("opcode 200 reported valid")
	}
	if _, ok := ByName("NotAGate"); ok {
		t.Error("ByName accepted unknown gate")
	}
}

func TestAdjointInvolution(t *testing.T) {
	for i := 0; i < NumOpcodes; i++ {
		op := Opcode(i)
		if got := op.Adjoint().Adjoint(); got != op {
			t.Errorf("%s: adjoint not involutive (%s)", op, got)
		}
	}
	if T.Adjoint() != Tdag || S.Adjoint() != Sdag {
		t.Error("T/S adjoints wrong")
	}
	if X.Adjoint() != X || CNOT.Adjoint() != CNOT {
		t.Error("self-adjoint gates changed under Adjoint")
	}
}

func TestRotationFlags(t *testing.T) {
	rot := map[Opcode]bool{Rx: true, Ry: true, Rz: true, CRz: true}
	for i := 0; i < NumOpcodes; i++ {
		op := Opcode(i)
		if op.IsRotation() != rot[op] {
			t.Errorf("%s: IsRotation = %v", op, op.IsRotation())
		}
	}
}

func TestPrimitiveSet(t *testing.T) {
	for _, op := range []Opcode{X, Y, Z, H, S, Sdag, T, Tdag, CNOT, CZ, PrepZ, MeasZ} {
		if !op.IsPrimitive() {
			t.Errorf("%s should be primitive", op)
		}
	}
	for _, op := range []Opcode{Toffoli, Fredkin, Rx, Ry, Rz, CRz, Swap} {
		if op.IsPrimitive() {
			t.Errorf("%s should not be primitive", op)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	decl := []string{"a", "b[0]", "b[1]", "anc"}
	insts := []Inst{
		{Op: H, Qubits: []string{"a"}},
		{Op: CNOT, Qubits: []string{"a", "b[0]"}},
		{Op: Toffoli, Qubits: []string{"a", "b[0]", "b[1]"}},
		{Op: Rz, Angle: 0.78539816, Qubits: []string{"anc"}},
		{Op: CRz, Angle: -1.5, Qubits: []string{"a", "anc"}},
		{Op: MeasZ, Qubits: []string{"b[1]"}},
	}
	var sb strings.Builder
	if err := Write(&sb, decl, insts); err != nil {
		t.Fatal(err)
	}
	gotDecl, gotInsts, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if len(gotDecl) != len(decl) {
		t.Fatalf("declarations: got %d, want %d", len(gotDecl), len(decl))
	}
	for i := range decl {
		if gotDecl[i] != decl[i] {
			t.Errorf("decl %d: %q != %q", i, gotDecl[i], decl[i])
		}
	}
	if len(gotInsts) != len(insts) {
		t.Fatalf("instructions: got %d, want %d", len(gotInsts), len(insts))
	}
	for i := range insts {
		a, b := insts[i], gotInsts[i]
		if a.Op != b.Op || a.Angle != b.Angle || len(a.Qubits) != len(b.Qubits) {
			t.Errorf("inst %d: %v != %v", i, a, b)
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Errorf("inst %d qubit %d: %q != %q", i, j, a.Qubits[j], b.Qubits[j])
			}
		}
	}
}

func TestParseToleratesCommentsAndBlank(t *testing.T) {
	src := "# header\n\nqubit q0\n\nH(q0)\n# trailing\n"
	decl, insts, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(decl) != 1 || len(insts) != 1 {
		t.Fatalf("got %d decls, %d insts", len(decl), len(insts))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"H q0",          // no parens
		"Frob(q0)",      // unknown gate
		"H(q0,q1)",      // wrong arity
		"CNOT(q0)",      // wrong arity
		"Rz(q0)",        // missing angle
		"Rz(q0,notnum)", // bad angle
		"Toffoli(a,b)",  // wrong arity
	} {
		if _, _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// Property: every instruction round-trips through its text form.
func TestInstStringRoundTripQuick(t *testing.T) {
	f := func(opRaw uint8, angleMilli int32, q1, q2, q3 uint8) bool {
		op := Opcode(int(opRaw) % NumOpcodes)
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		qubits := []string{names[q1%8], names[(q2%7)+1], "x[" + names[q3%8] + "]"}
		// Ensure distinct names for the arity taken.
		qubits[1] = qubits[0] + "_2"
		qubits[2] = qubits[0] + "_3"
		in := Inst{Op: op, Qubits: qubits[:op.Arity()]}
		if op.IsRotation() {
			in.Angle = float64(angleMilli) / 1024
		}
		parsed, err := parseInst(in.String())
		if err != nil {
			return false
		}
		if parsed.Op != in.Op || parsed.Angle != in.Angle || len(parsed.Qubits) != len(in.Qubits) {
			return false
		}
		for i := range in.Qubits {
			if parsed.Qubits[i] != in.Qubits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
