package qasm

import (
	"strings"
	"testing"
)

// FuzzParseQASM asserts the QASM reader never panics and that accepted
// streams round-trip through Write.
func FuzzParseQASM(f *testing.F) {
	seeds := []string{
		"",
		"qubit q\nH(q)\n",
		"qubit a\nqubit b\nCNOT(a,b)\nRz(b,0.5)\n",
		"# comment\n\nqubit x[0]\nT(x[0])\n",
		"H(q)\nH q\n",
		"Rz(q)\n",
		"Toffoli(a,b,c)\n",
		"qubit q\nMeasZ(q)\nPrepZ(q)\n",
		"NotAGate(q)\n",
		"CNOT(a,a)\n",
		strings.Repeat("qubit q\n", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		decl, insts, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, decl, insts); err != nil {
			t.Fatalf("write failed on accepted input: %v", err)
		}
		d2, i2, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal: %q\nwritten: %q", err, src, sb.String())
		}
		if len(d2) != len(decl) || len(i2) != len(insts) {
			t.Fatalf("round trip changed shape: %d/%d decls, %d/%d insts",
				len(d2), len(decl), len(i2), len(insts))
		}
	})
}
