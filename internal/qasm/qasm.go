package qasm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Inst is one flat QASM-HL instruction: a gate applied to named qubits.
type Inst struct {
	Op     Opcode
	Angle  float64  // meaningful only when Op.IsRotation()
	Qubits []string // operand names, e.g. "a0", "anc[3]"
}

// String renders the instruction in QASM-HL surface syntax.
func (in Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	b.WriteByte('(')
	for i, q := range in.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(q)
	}
	if in.Op.IsRotation() {
		if len(in.Qubits) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(in.Angle, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Write emits a flat instruction stream, one instruction per line, with a
// leading qubit declaration block. Declared is the set of qubit names.
func Write(w io.Writer, declared []string, insts []Inst) error {
	bw := bufio.NewWriter(w)
	for _, q := range declared {
		if _, err := fmt.Fprintf(bw, "qubit %s\n", q); err != nil {
			return err
		}
	}
	for _, in := range insts {
		if _, err := fmt.Fprintln(bw, in.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a QASM-HL stream produced by Write. It tolerates blank lines
// and '#' comments.
func Parse(r io.Reader) (declared []string, insts []Inst, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "qubit "); ok {
			declared = append(declared, strings.TrimSpace(rest))
			continue
		}
		in, perr := parseInst(line)
		if perr != nil {
			return nil, nil, fmt.Errorf("qasm: line %d: %w", lineno, perr)
		}
		insts = append(insts, in)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("qasm: %w", err)
	}
	return declared, insts, nil
}

func parseInst(line string) (Inst, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return Inst{}, fmt.Errorf("malformed instruction %q", line)
	}
	name := strings.TrimSpace(line[:open])
	op, ok := ByName(name)
	if !ok {
		return Inst{}, fmt.Errorf("unknown gate %q", name)
	}
	body := line[open+1 : len(line)-1]
	var args []string
	if strings.TrimSpace(body) != "" {
		args = splitArgs(body)
	}
	in := Inst{Op: op}
	want := op.Arity()
	if op.IsRotation() {
		if len(args) != want+1 {
			return Inst{}, fmt.Errorf("%s expects %d qubits and an angle, got %d args", name, want, len(args))
		}
		angle, err := strconv.ParseFloat(strings.TrimSpace(args[len(args)-1]), 64)
		if err != nil {
			return Inst{}, fmt.Errorf("%s: bad angle: %w", name, err)
		}
		in.Angle = angle
		args = args[:len(args)-1]
	} else if len(args) != want {
		return Inst{}, fmt.Errorf("%s expects %d qubits, got %d", name, want, len(args))
	}
	in.Qubits = make([]string, len(args))
	for i, a := range args {
		in.Qubits[i] = strings.TrimSpace(a)
	}
	return in, nil
}

// splitArgs splits on top-level commas; qubit names may contain brackets
// but never nested parentheses, so a simple depth count over '[' suffices.
func splitArgs(body string) []string {
	var args []string
	depth, start := 0, 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, body[start:i])
				start = i + 1
			}
		}
	}
	return append(args, body[start:])
}
