package sim_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/sim"
)

func newState(t *testing.T, n int) *sim.State {
	t.Helper()
	s, err := sim.NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func apply(t *testing.T, s *sim.State, op qasm.Opcode, angle float64, qs ...int) {
	t.Helper()
	if err := s.Apply(op, angle, qs...); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlip(t *testing.T) {
	s := newState(t, 2)
	apply(t, s, qasm.X, 0, 0)
	if cmplx.Abs(s.Amplitude(1)-1) > 1e-12 {
		t.Errorf("X|00> != |01>: %v", s.Amplitude(1))
	}
	apply(t, s, qasm.X, 0, 1)
	if cmplx.Abs(s.Amplitude(3)-1) > 1e-12 {
		t.Errorf("amplitude %v", s.Amplitude(3))
	}
}

func TestHadamardInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := sim.NewRandomState(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	orig := s.Clone()
	apply(t, s, qasm.H, 0, 1)
	apply(t, s, qasm.H, 0, 1)
	if !sim.EqualUpToPhase(orig, s, 1e-10) {
		t.Error("H^2 != I")
	}
}

func TestCNOTTruthTable(t *testing.T) {
	for in := uint64(0); in < 4; in++ {
		s, err := sim.NewBasisState(2, in)
		if err != nil {
			t.Fatal(err)
		}
		apply(t, s, qasm.CNOT, 0, 0, 1) // control qubit 0, target qubit 1
		want := in
		if in&1 != 0 {
			want ^= 2
		}
		if cmplx.Abs(s.Amplitude(want)-1) > 1e-12 {
			t.Errorf("CNOT|%02b>: expected |%02b>", in, want)
		}
	}
}

func TestToffoliTruthTable(t *testing.T) {
	for in := uint64(0); in < 8; in++ {
		s, err := sim.NewBasisState(3, in)
		if err != nil {
			t.Fatal(err)
		}
		apply(t, s, qasm.Toffoli, 0, 0, 1, 2)
		want := in
		if in&3 == 3 {
			want ^= 4
		}
		if cmplx.Abs(s.Amplitude(want)-1) > 1e-12 {
			t.Errorf("Toffoli|%03b>: expected |%03b>", in, want)
		}
	}
}

func TestFredkinTruthTable(t *testing.T) {
	for in := uint64(0); in < 8; in++ {
		s, err := sim.NewBasisState(3, in)
		if err != nil {
			t.Fatal(err)
		}
		apply(t, s, qasm.Fredkin, 0, 0, 1, 2)
		want := in
		if in&1 != 0 {
			b1, b2 := (in>>1)&1, (in>>2)&1
			want = in&1 | b2<<1 | b1<<2
		}
		if cmplx.Abs(s.Amplitude(want)-1) > 1e-12 {
			t.Errorf("Fredkin|%03b>: expected |%03b>", in, want)
		}
	}
}

func TestSwapEqualsThreeCNOTs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := sim.NewRandomState(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	apply(t, a, qasm.Swap, 0, 0, 2)
	apply(t, b, qasm.CNOT, 0, 0, 2)
	apply(t, b, qasm.CNOT, 0, 2, 0)
	apply(t, b, qasm.CNOT, 0, 0, 2)
	if !sim.EqualUpToPhase(a, b, 1e-10) {
		t.Error("Swap != CNOT^3")
	}
}

func TestSTRelations(t *testing.T) {
	// T^2 = S, S^2 = Z on random states.
	rng := rand.New(rand.NewSource(3))
	a, err := sim.NewRandomState(2, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	apply(t, a, qasm.T, 0, 0)
	apply(t, a, qasm.T, 0, 0)
	apply(t, b, qasm.S, 0, 0)
	if !sim.EqualUpToPhase(a, b, 1e-10) {
		t.Error("T^2 != S")
	}
	c, err := sim.NewRandomState(2, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Clone()
	apply(t, c, qasm.S, 0, 0)
	apply(t, c, qasm.S, 0, 0)
	apply(t, d, qasm.Z, 0, 0)
	if !sim.EqualUpToPhase(c, d, 1e-10) {
		t.Error("S^2 != Z")
	}
}

func TestRzComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, err := sim.NewRandomState(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	apply(t, a, qasm.Rz, 0.4, 0)
	apply(t, a, qasm.Rz, 0.35, 0)
	apply(t, b, qasm.Rz, 0.75, 0)
	if !sim.EqualUpToPhase(a, b, 1e-10) {
		t.Error("Rz(a)Rz(b) != Rz(a+b)")
	}
}

func TestCRzControlled(t *testing.T) {
	// Control |0>: CRz acts trivially.
	s := newState(t, 2)
	apply(t, s, qasm.H, 0, 1)
	before := s.Clone()
	apply(t, s, qasm.CRz, 1.1, 0, 1)
	if !sim.EqualUpToPhase(before, s, 1e-10) {
		t.Error("CRz with control |0> changed the state")
	}
	// Control |1>: acts as Rz on target.
	s2 := newState(t, 2)
	apply(t, s2, qasm.X, 0, 0)
	apply(t, s2, qasm.H, 0, 1)
	want := s2.Clone()
	apply(t, s2, qasm.CRz, 1.1, 0, 1)
	apply(t, want, qasm.Rz, 1.1, 1)
	if !sim.EqualUpToPhase(want, s2, 1e-10) {
		t.Error("CRz with control |1> != Rz on target")
	}
}

func TestProbAndCollapse(t *testing.T) {
	s := newState(t, 1)
	apply(t, s, qasm.H, 0, 0)
	if p := s.Prob0(0); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(0) = %g", p)
	}
	if err := s.Collapse(0, 1); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.Amplitude(1))-1 > 1e-12 || s.Prob0(0) > 1e-12 {
		t.Error("collapse to |1> failed")
	}
	if err := s.Collapse(0, 0); err == nil {
		t.Error("zero-probability collapse accepted")
	}
}

func TestReset(t *testing.T) {
	s := newState(t, 2)
	apply(t, s, qasm.X, 0, 0)
	if err := s.Reset(0); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.Amplitude(0)-1) > 1e-12 {
		t.Error("reset failed")
	}
}

func TestRunProgramWithCallsAndAncilla(t *testing.T) {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, []ir.Reg{{Name: "anc", Size: 1}})
	// anc ^= x twice: anc returns clean, x untouched.
	leaf.Gate(qasm.CNOT, 0, 1).Gate(qasm.CNOT, 0, 1)
	p.Add(leaf)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.Gate(qasm.X, 0)
	main.Call("leaf", ir.Range{Start: 0, Len: 1})
	p.Add(main)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := newState(t, 2) // 1 program qubit + 1 ancilla
	if err := s.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.Amplitude(1)-1) > 1e-12 {
		t.Errorf("expected |01>, amplitudes: %v %v", s.Amplitude(1), s.Amplitude(3))
	}
}

func TestRunProgramAncillaExhaustion(t *testing.T) {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, []ir.Reg{{Name: "anc", Size: 5}})
	leaf.Gate(qasm.CNOT, 0, 1)
	p.Add(leaf)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.Call("leaf", ir.Range{Start: 0, Len: 1})
	p.Add(main)
	s := newState(t, 2) // too small for 5 ancillae
	if err := s.RunProgram(p); err == nil {
		t.Error("ancilla exhaustion not reported")
	}
}

func TestNormPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := sim.NewRandomState(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ops := []qasm.Opcode{qasm.H, qasm.T, qasm.CNOT, qasm.Toffoli, qasm.Rz, qasm.X, qasm.CRz, qasm.Swap}
	for i := 0; i < 200; i++ {
		op := ops[rng.Intn(len(ops))]
		qs := rng.Perm(4)[:op.Arity()]
		if err := s.Apply(op, rng.Float64(), qs...); err != nil {
			t.Fatal(err)
		}
	}
	var norm float64
	for i := uint64(0); i < 16; i++ {
		norm += math.Pow(cmplx.Abs(s.Amplitude(i)), 2)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("norm drifted to %g", norm)
	}
}

func TestFidelity(t *testing.T) {
	a := newState(t, 2)
	b := a.Clone()
	f, err := sim.Fidelity(a, b)
	if err != nil || math.Abs(f-1) > 1e-12 {
		t.Errorf("identical fidelity %g (%v)", f, err)
	}
	apply(t, b, qasm.X, 0, 0)
	f, err = sim.Fidelity(a, b)
	if err != nil || f > 1e-12 {
		t.Errorf("orthogonal fidelity %g (%v)", f, err)
	}
}

func TestOperandValidation(t *testing.T) {
	s := newState(t, 2)
	if err := s.Apply(qasm.CNOT, 0, 0, 0); err == nil {
		t.Error("repeated operand accepted (no-cloning)")
	}
	if err := s.Apply(qasm.H, 0, 5); err == nil {
		t.Error("out-of-range operand accepted")
	}
	if err := s.Apply(qasm.CNOT, 0, 0); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestNewStateBounds(t *testing.T) {
	if _, err := sim.NewState(0); err == nil {
		t.Error("accepted 0 qubits")
	}
	if _, err := sim.NewState(sim.MaxQubits + 1); err == nil {
		t.Error("accepted too many qubits")
	}
	s, err := sim.NewState(sim.MaxQubits - 10)
	if err != nil || s.N() != sim.MaxQubits-10 {
		t.Errorf("mid-size state: %v", err)
	}
}

func TestNewBasisState(t *testing.T) {
	s, err := sim.NewBasisState(3, 0b101)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.Amplitude(0b101)-1) > 1e-12 {
		t.Error("wrong basis amplitude")
	}
	if _, err := sim.NewBasisState(2, 4); err == nil {
		t.Error("out-of-range basis accepted")
	}
}

func TestMeasZCollapsesDeterministically(t *testing.T) {
	s := newState(t, 1)
	apply(t, s, qasm.Ry, 2.6, 0) // heavily weighted toward |1>
	apply(t, s, qasm.MeasZ, 0, 0)
	if cmplx.Abs(s.Amplitude(1))-1 > 1e-9 {
		t.Error("MeasZ did not collapse to the likelier outcome")
	}
	s2 := newState(t, 1)
	apply(t, s2, qasm.MeasZ, 0, 0) // |0> stays |0>
	if cmplx.Abs(s2.Amplitude(0)-1) > 1e-12 {
		t.Error("MeasZ disturbed |0>")
	}
}

func TestPrepZResets(t *testing.T) {
	s := newState(t, 2)
	apply(t, s, qasm.X, 0, 1)
	apply(t, s, qasm.PrepZ, 0, 1)
	if cmplx.Abs(s.Amplitude(0)-1) > 1e-12 {
		t.Error("PrepZ failed to reset")
	}
}

func TestRunModuleMaterializedCounts(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Ops = append(m.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.X, Args: []int{0}, Count: 3})
	s := newState(t, 1)
	if err := s.RunModule(m); err != nil {
		t.Fatal(err)
	}
	// X applied 3 times = X once.
	if cmplx.Abs(s.Amplitude(1)-1) > 1e-12 {
		t.Error("counted gate misapplied")
	}
	bad := ir.NewModule("bad", nil, []ir.Reg{{Name: "q", Size: 1}})
	bad.Call("other", ir.Range{Start: 0, Len: 1})
	if err := s.RunModule(bad); err == nil {
		t.Error("RunModule accepted a call op")
	}
}

func TestEqualUpToPhaseNegatives(t *testing.T) {
	a := newState(t, 2)
	b := newState(t, 3)
	if sim.EqualUpToPhase(a, b, 1e-9) {
		t.Error("different sizes compared equal")
	}
	c := newState(t, 2)
	apply(t, c, qasm.H, 0, 0)
	if sim.EqualUpToPhase(a, c, 1e-9) {
		t.Error("different states compared equal")
	}
	// Global phase must be tolerated.
	d := a.Clone()
	apply(t, d, qasm.X, 0, 0)
	apply(t, d, qasm.Z, 0, 0)
	apply(t, d, qasm.X, 0, 0) // XZX = -Z up to phase; on |00> gives phase only
	if !sim.EqualUpToPhase(a, d, 1e-9) {
		t.Error("pure global phase rejected")
	}
}

func TestRunProgramRejectsParams(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", []ir.Reg{{Name: "x", Size: 1}}, nil)
	m.Gate(qasm.H, 0)
	p.Add(m)
	s := newState(t, 1)
	if err := s.RunProgram(p); err == nil {
		t.Error("entry with parameters accepted")
	}
	if err := s.RunProgram(ir.NewProgram("ghost")); err == nil {
		t.Error("missing entry accepted")
	}
}
