// Package sim is a dense state-vector quantum simulator over the
// toolflow's gate vocabulary. It exists to verify semantics, not to run
// benchmarks: gate decompositions, scheduled circuits and reversible
// arithmetic are checked against it up to ~20 qubits.
//
// Qubit q is bit q of the basis index (little-endian).
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// MaxQubits bounds simulator size (2^24 amplitudes ≈ 256 MiB).
const MaxQubits = 24

// State is a normalized quantum state over n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of range [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// NewBasisState returns |bits> where bit q of bits sets qubit q.
func NewBasisState(n int, bits uint64) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	if bits >= 1<<uint(n) {
		return nil, fmt.Errorf("sim: basis index %d out of range for %d qubits", bits, n)
	}
	s.amp[0] = 0
	s.amp[bits] = 1
	return s, nil
}

// NewRandomState returns a Haar-ish random normalized state drawn from
// rng (Gaussian components, normalized).
func NewRandomState(n int, rng *rand.Rand) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	var norm float64
	for i := range s.amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return s, nil
}

// N returns the qubit count.
func (s *State) N() int { return s.n }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i uint64) complex128 { return s.amp[i] }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

// single-qubit matrices
var (
	invSqrt2 = complex(1/math.Sqrt2, 0)
	matX     = [2][2]complex128{{0, 1}, {1, 0}}
	matY     = [2][2]complex128{{0, -1i}, {1i, 0}}
	matZ     = [2][2]complex128{{1, 0}, {0, -1}}
	matH     = [2][2]complex128{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}}
	matS     = [2][2]complex128{{1, 0}, {0, 1i}}
	matSdag  = [2][2]complex128{{1, 0}, {0, -1i}}
	matT     = [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}
	matTdag  = [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}}
)

func matRz(theta float64) [2][2]complex128 {
	return [2][2]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	}
}

func matRx(theta float64) [2][2]complex128 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return [2][2]complex128{{c, s}, {s, c}}
}

func matRy(theta float64) [2][2]complex128 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return [2][2]complex128{{c, -s}, {s, c}}
}

// apply1 applies a 2x2 matrix to qubit q.
func (s *State) apply1(m [2][2]complex128, q int) {
	bit := uint64(1) << uint(q)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&bit != 0 {
			continue
		}
		a0, a1 := s.amp[i], s.amp[i|bit]
		s.amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
	}
}

// applyControlled1 applies m to target when all control bits are 1.
func (s *State) applyControlled1(m [2][2]complex128, target int, controls ...int) {
	bit := uint64(1) << uint(target)
	var cmask uint64
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&bit != 0 || i&cmask != cmask {
			continue
		}
		a0, a1 := s.amp[i], s.amp[i|bit]
		s.amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
	}
}

func (s *State) swap(a, b int) {
	ba, bb := uint64(1)<<uint(a), uint64(1)<<uint(b)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&ba != 0 || i&bb == 0 {
			continue
		}
		j := (i | ba) &^ bb
		s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
	}
}

// Apply applies one gate. Operands must be distinct and in range.
func (s *State) Apply(op qasm.Opcode, angle float64, qs ...int) error {
	if len(qs) != op.Arity() {
		return fmt.Errorf("sim: %s wants %d operands, got %d", op, op.Arity(), len(qs))
	}
	seen := 0
	for _, q := range qs {
		if q < 0 || q >= s.n {
			return fmt.Errorf("sim: qubit %d out of range [0,%d)", q, s.n)
		}
		if seen&(1<<uint(q)) != 0 {
			return fmt.Errorf("sim: %s repeats qubit %d", op, q)
		}
		seen |= 1 << uint(q)
	}
	switch op {
	case qasm.X:
		s.apply1(matX, qs[0])
	case qasm.Y:
		s.apply1(matY, qs[0])
	case qasm.Z:
		s.apply1(matZ, qs[0])
	case qasm.H:
		s.apply1(matH, qs[0])
	case qasm.S:
		s.apply1(matS, qs[0])
	case qasm.Sdag:
		s.apply1(matSdag, qs[0])
	case qasm.T:
		s.apply1(matT, qs[0])
	case qasm.Tdag:
		s.apply1(matTdag, qs[0])
	case qasm.Rx:
		s.apply1(matRx(angle), qs[0])
	case qasm.Ry:
		s.apply1(matRy(angle), qs[0])
	case qasm.Rz:
		s.apply1(matRz(angle), qs[0])
	case qasm.CNOT:
		s.applyControlled1(matX, qs[1], qs[0])
	case qasm.CZ:
		s.applyControlled1(matZ, qs[1], qs[0])
	case qasm.CRz:
		s.applyControlled1(matRz(angle), qs[1], qs[0])
	case qasm.Swap:
		s.swap(qs[0], qs[1])
	case qasm.Toffoli:
		s.applyControlled1(matX, qs[2], qs[0], qs[1])
	case qasm.Fredkin:
		// controlled swap of qs[1], qs[2] on control qs[0]
		s.applyControlled1(matX, qs[1], qs[0], qs[2])
		s.applyControlled1(matX, qs[2], qs[0], qs[1])
		s.applyControlled1(matX, qs[1], qs[0], qs[2])
	case qasm.PrepZ:
		return s.Reset(qs[0])
	case qasm.MeasZ:
		// Non-destructive in this simulator: collapse to the more
		// probable outcome deterministically (ties pick 0). Tests avoid
		// measuring entangled registers they keep using.
		p0 := s.Prob0(qs[0])
		out := 0
		if p0 < 0.5 {
			out = 1
		}
		return s.Collapse(qs[0], out)
	default:
		return fmt.Errorf("sim: unsupported opcode %s", op)
	}
	return nil
}

// Prob0 returns the probability of measuring qubit q as 0.
func (s *State) Prob0(q int) float64 {
	bit := uint64(1) << uint(q)
	var p float64
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&bit == 0 {
			re, im := real(s.amp[i]), imag(s.amp[i])
			p += re*re + im*im
		}
	}
	return p
}

// Collapse projects qubit q onto the given outcome and renormalizes.
func (s *State) Collapse(q, outcome int) error {
	bit := uint64(1) << uint(q)
	var norm float64
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		keep := (i&bit != 0) == (outcome == 1)
		if keep {
			re, im := real(s.amp[i]), imag(s.amp[i])
			norm += re*re + im*im
		} else {
			s.amp[i] = 0
		}
	}
	if norm < 1e-15 {
		return fmt.Errorf("sim: collapse of qubit %d to %d has zero probability", q, outcome)
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return nil
}

// Reset forces qubit q to |0> (measure; X-correct if 1).
func (s *State) Reset(q int) error {
	p0 := s.Prob0(q)
	if p0 >= 0.5 {
		return s.Collapse(q, 0)
	}
	if err := s.Collapse(q, 1); err != nil {
		return err
	}
	s.apply1(matX, q)
	return nil
}

// RunModule applies every gate op of a materialized leaf module in order.
func (s *State) RunModule(m *ir.Module) error {
	if m.TotalSlots() > s.n {
		return fmt.Errorf("sim: module %s needs %d qubits, state has %d", m.Name, m.TotalSlots(), s.n)
	}
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Kind != ir.GateOp {
			return fmt.Errorf("sim: module %s op %d is a call; flatten first", m.Name, i)
		}
		for r := int64(0); r < op.EffCount(); r++ {
			if err := s.Apply(op.Gate, op.Angle, op.Args...); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunProgram applies a whole program by inlining calls on the fly.
func (s *State) RunProgram(p *ir.Program) error {
	entry := p.EntryModule()
	if entry == nil {
		return fmt.Errorf("sim: missing entry module %q", p.Entry)
	}
	if entry.ParamSlots() != 0 {
		return fmt.Errorf("sim: entry module %s takes parameters", entry.Name)
	}
	base := make([]int, entry.TotalSlots())
	live := make(map[int]bool, len(base))
	for i := range base {
		base[i] = i
		live[i] = true
	}
	return s.runModuleMapped(p, entry, base, live)
}

// runModuleMapped executes module m with its slots bound to simulator
// qubits via slotMap. live tracks every simulator qubit holding state in
// any active frame; callee ancillae are allocated outside it and released
// after the call (reversible modules return ancillae clean).
func (s *State) runModuleMapped(p *ir.Program, m *ir.Module, slotMap []int, live map[int]bool) error {
	if m.TotalSlots() > len(slotMap) {
		return fmt.Errorf("sim: slot map too small for module %s", m.Name)
	}
	for i := range m.Ops {
		op := &m.Ops[i]
		for rep := int64(0); rep < op.EffCount(); rep++ {
			switch op.Kind {
			case ir.GateOp:
				qs := make([]int, len(op.Args))
				for j, a := range op.Args {
					qs[j] = slotMap[a]
				}
				if err := s.Apply(op.Gate, op.Angle, qs...); err != nil {
					return err
				}
			case ir.CallOp:
				callee := p.Modules[op.Callee]
				if callee == nil {
					return fmt.Errorf("sim: missing module %q", op.Callee)
				}
				sub := make([]int, 0, callee.TotalSlots())
				for _, r := range op.CallArgs {
					for q := r.Start; q < r.Start+r.Len; q++ {
						sub = append(sub, slotMap[q])
					}
				}
				// Callee locals need fresh simulator qubits; allocate
				// from the tail of the state if available.
				var anc []int
				for q := 0; len(sub) < callee.TotalSlots(); q++ {
					if q >= s.n {
						return fmt.Errorf("sim: out of ancilla qubits for %s", callee.Name)
					}
					if !live[q] {
						sub = append(sub, q)
						anc = append(anc, q)
						live[q] = true
					}
				}
				err := s.runModuleMapped(p, callee, sub, live)
				for _, q := range anc {
					delete(live, q)
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// EqualUpToPhase reports whether two states are equal up to a global
// phase within tolerance.
func EqualUpToPhase(a, b *State, tol float64) bool {
	if a.n != b.n {
		return false
	}
	// Find the reference amplitude.
	ref := -1
	var best float64
	for i := range a.amp {
		m := cmplx.Abs(a.amp[i])
		if m > best {
			best = m
			ref = i
		}
	}
	if ref < 0 || best < 1e-12 {
		return false
	}
	phase := b.amp[ref] / a.amp[ref]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := range a.amp {
		if cmplx.Abs(a.amp[i]*phase-b.amp[i]) > tol {
			return false
		}
	}
	return true
}

// Fidelity returns |<a|b>|^2.
func Fidelity(a, b *State) (float64, error) {
	if a.n != b.n {
		return 0, fmt.Errorf("sim: fidelity of %d- and %d-qubit states", a.n, b.n)
	}
	var dot complex128
	for i := range a.amp {
		dot += cmplx.Conj(a.amp[i]) * b.amp[i]
	}
	m := cmplx.Abs(dot)
	return m * m, nil
}
