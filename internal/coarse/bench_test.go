package coarse_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/coarse"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// benchModule builds a seeded call-heavy non-leaf: ops cycle between
// stray gates and calls to a handful of callees with multi-width dims,
// over overlapping slot ranges so the dependency graph has real chains.
func benchModule(nOps int) (*ir.Module, func(string) (coarse.Dims, error)) {
	rng := rand.New(rand.NewSource(7))
	m := ir.NewModule("bench", nil, []ir.Reg{{Name: "q", Size: 32}})
	dims := map[string]coarse.Dims{
		"f0": {Widths: []int{1, 2}, Lengths: []int64{40, 24}},
		"f1": {Widths: []int{1, 2, 4}, Lengths: []int64{100, 60, 36}},
		"f2": {Widths: []int{1}, Lengths: []int64{15}},
	}
	for i := 0; i < nOps; i++ {
		switch rng.Intn(4) {
		case 0:
			m.Gate(qasm.H, rng.Intn(32))
		default:
			callee := fmt.Sprintf("f%d", rng.Intn(3))
			start := rng.Intn(28)
			m.Call(callee, ir.Range{Start: start, Len: 4})
		}
	}
	return m, func(callee string) (coarse.Dims, error) { return dims[callee], nil }
}

// BenchmarkCoarseCompose measures coarse scheduling of one call-heavy
// non-leaf module — the compose phase of the hierarchical engine.
func BenchmarkCoarseCompose(b *testing.B) {
	m, dims := benchModule(400)
	opts := coarse.Options{K: 8, Cost: coarse.WithComm, Dims: dims}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coarse.Schedule(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}
