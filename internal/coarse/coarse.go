// Package coarse implements the paper's hierarchical coarse-grained
// scheduler (Algorithm 3, §4.3).
//
// Leaf modules are scheduled by the fine-grained schedulers (rcp, lpfs)
// and characterized as blackboxes with flexible rectangular dimensions:
// for widths 1..k, the schedule length achieved at that width. The
// coarse scheduler walks each non-leaf module in criticality order and
// packs blackboxes onto the k SIMD regions: each op claims `width`
// regions for `length` timesteps starting no earlier than its data
// dependencies allow, and the width option is chosen per op to minimize
// its finish time under current congestion — the role of Algorithm 3's
// flexible-dimension combination search. Non-leaf modules are in turn
// characterized as blackboxes for their callers, bottom-up over the
// call graph.
//
// Compared to the paper's pseudocode, which grows rectangular parallel
// groups and serializes on overflow, this implementation tracks
// per-region availability directly; temporally staggered (pipelined)
// chains therefore pack without inflating group width, which the
// rectangular formulation over-counts. The flexible-width selection is
// the same mechanism, applied per placement.
package coarse

import (
	"fmt"
	"math"
	"sort"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
)

// Dims is a blackbox's flexible dimensions: Widths[i] and Lengths[i]
// pair a region budget with the schedule length achieved at that width.
type Dims struct {
	Widths  []int
	Lengths []int64
}

// Best returns the minimal length achievable within maxWidth regions and
// the width that achieves it. ok is false when no option fits.
func (d Dims) Best(maxWidth int) (width int, length int64, ok bool) {
	length = math.MaxInt64
	for i, w := range d.Widths {
		if w <= maxWidth && d.Lengths[i] < length {
			width, length, ok = w, d.Lengths[i], true
		}
	}
	return
}

// MinWidth returns the narrowest option.
func (d Dims) MinWidth() (width int, length int64, ok bool) {
	if len(d.Widths) == 0 {
		return 0, 0, false
	}
	return d.Widths[0], d.Lengths[0], true
}

// CostModel sets the coarse-level costs of primitive operations.
type CostModel struct {
	// GateCost is the cycles charged per coarse-level gate: 1 in the
	// parallelism-only model, 1 + 4 movement when accounting
	// communication (§4.3: "an operation execution cost of 1 and a
	// movement cost of 4").
	GateCost int64
	// CallOverhead is the fixed flush cost added to each module
	// invocation: 0 in the parallelism-only model, one teleportation
	// (4 cycles) when accounting communication (§3.2).
	CallOverhead int64
}

// ZeroComm is the communication-free cost model (Fig. 6).
var ZeroComm = CostModel{GateCost: 1, CallOverhead: 0}

// WithComm charges naive movement on stray coarse gates and one teleport
// per call (Figs. 7–9).
var WithComm = CostModel{GateCost: 5, CallOverhead: 4}

// Options configures a coarse scheduling run.
type Options struct {
	K    int
	Cost CostModel
	Dims func(callee string) (Dims, error)

	// Trace, when non-nil, records a span per coarse scheduling run
	// (category "coarse", named after the module) carrying the chosen
	// length and placement count. Nil is free.
	Trace *obs.Tracer
}

// Placement records where one coarse op landed.
type Placement struct {
	OpIndex int
	Start   int64 // first timestep, 0-based
	Width   int
	Length  int64
}

// Result is a coarse schedule of one non-leaf module.
type Result struct {
	Length     int64
	Width      int
	Placements []Placement
}

// Schedule runs the coarse scheduler over module m.
func Schedule(m *ir.Module, opts Options) (*Result, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("coarse: k must be >= 1, got %d", opts.K)
	}
	if opts.Cost.GateCost <= 0 {
		return nil, fmt.Errorf("coarse: gate cost must be positive")
	}

	n := len(m.Ops)
	res := &Result{}
	if opts.Trace.Enabled() {
		sp := opts.Trace.Span("coarse", m.Name)
		sp.SetInt("k", int64(opts.K))
		sp.SetInt("ops", int64(n))
		defer func() {
			sp.SetInt("length", res.Length)
			sp.SetInt("width", int64(res.Width))
			sp.End()
		}()
	}
	if n == 0 {
		return res, nil
	}

	boxes, err := buildBoxes(m, opts)
	if err != nil {
		return nil, err
	}
	preds := buildDeps(m)
	order := priorityOrder(boxes, preds)

	pl := newPlacer(opts.K)
	finish := make([]int64, n)
	res.Placements = make([]Placement, n)
	readyAt := func(i int) int64 {
		var te int64
		for p := range preds[i] {
			if finish[p] > te {
				te = finish[p]
			}
		}
		return te
	}
	place := func(i int, te int64, forceWidth int) error {
		p, ok := pl.place(boxes[i], te, forceWidth)
		if !ok {
			return noFitError(i, m.Name, opts.K, forceWidth)
		}
		p.OpIndex = i
		finish[i] = p.Start + p.Length
		res.Placements[i] = p
		if f := p.Start + p.Length; f > res.Length {
			res.Length = f
		}
		return nil
	}

	// Walk the priority order in waves: a maximal consecutive run of
	// identically-dimensioned, mutually independent ops that become
	// ready at the same time is a parallel group in Algorithm 3's
	// sense, and its members' widths are chosen jointly rather than
	// greedily. Membership requires no predecessor inside the wave
	// (everything before the wave is already placed, because the order
	// is topological, so earliest start times are then exact).
	wave := make([]int, 0, n)
	inWave := make([]bool, n)
	for idx := 0; idx < len(order); {
		i := order[idx]
		te := readyAt(i)
		wave = append(wave[:0], i)
		inWave[i] = true
	grow:
		for j := idx + 1; j < len(order); j++ {
			cand := order[j]
			if !sameDims(boxes[cand], boxes[i]) {
				break
			}
			for p := range preds[cand] {
				if inWave[p] {
					break grow
				}
			}
			if readyAt(cand) != te {
				break
			}
			wave = append(wave, cand)
			inWave[cand] = true
		}
		forced := 0
		if len(wave) > 1 {
			forced = waveWidth(boxes[i], len(wave), freeRegionsAt(pl.freeAt, te))
		}
		for _, w := range wave {
			inWave[w] = false
			if err := place(w, readyAt(w), forced); err != nil {
				return nil, err
			}
		}
		idx += len(wave)
	}

	res.Width = peakWidth(res.Placements, opts.K)
	return res, nil
}

// placer tracks region availability and places one blackbox at a time.
// The pre-refactor implementation copy-sorted freeAt once to rank start
// times and a second (region, free) slice to claim regions — two
// O(k log k) sorts and two allocations per placement. The placer instead
// runs a single partial selection over a reusable min-heap of region
// ids keyed by (freeAt, id): one heapify plus at most wMax pops, no
// allocation. Ties in free time are claimed lowest-region-first; the
// original's tie order was unspecified, but any tied choice yields the
// same freeAt multiset, so results are bit-identical (placements do not
// name regions).
type placer struct {
	k      int
	freeAt []int64 // freeAt[r] is when region r next becomes idle
	heap   []int32 // scratch: region ids, min-heap by (freeAt, id)
	sel    []int32 // scratch: regions popped in ascending order
}

func newPlacer(k int) *placer {
	return &placer{
		k:      k,
		freeAt: make([]int64, k),
		heap:   make([]int32, k),
		sel:    make([]int32, 0, k),
	}
}

func (p *placer) less(a, b int32) bool {
	if p.freeAt[a] != p.freeAt[b] {
		return p.freeAt[a] < p.freeAt[b]
	}
	return a < b
}

func (p *placer) siftDown(h []int32, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && p.less(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && p.less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// selectEarliest fills p.sel with the n regions that free earliest, in
// ascending (freeAt, id) order: heapify O(k) plus n pops.
func (p *placer) selectEarliest(n int) []int32 {
	h := p.heap[:p.k]
	for i := range h {
		h[i] = int32(i)
	}
	for i := p.k/2 - 1; i >= 0; i-- {
		p.siftDown(h, i)
	}
	sel := p.sel[:0]
	for len(sel) < n {
		sel = append(sel, h[0])
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		p.siftDown(h, 0)
	}
	p.sel = sel
	return sel
}

// place chooses the width option of d minimizing finish time (ties
// prefer narrower boxes, leaving room for siblings), claims the regions
// that free earliest, and returns the placement. ok is false when no
// option fits k (or the forced width).
func (p *placer) place(d Dims, te int64, forceWidth int) (Placement, bool) {
	wMax := 0
	for _, w := range d.Widths {
		if w > p.k || (forceWidth > 0 && w != forceWidth) {
			continue
		}
		if w > wMax {
			wMax = w
		}
	}
	if wMax == 0 {
		return Placement{}, false
	}
	sel := p.selectEarliest(wMax)
	bestFinish := int64(math.MaxInt64)
	bestStart := int64(0)
	bestW, bestL := 0, int64(0)
	for j, w := range d.Widths {
		if w > p.k || (forceWidth > 0 && w != forceWidth) {
			continue
		}
		// Starting a w-wide box requires the w earliest-free regions.
		start := p.freeAt[sel[w-1]]
		if te > start {
			start = te
		}
		f := start + d.Lengths[j]
		if f < bestFinish || (f == bestFinish && w < bestW) {
			bestFinish, bestStart, bestW, bestL = f, start, w, d.Lengths[j]
		}
	}
	for claimed := 0; claimed < bestW; claimed++ {
		p.freeAt[sel[claimed]] = bestFinish
	}
	return Placement{Start: bestStart, Width: bestW, Length: bestL}, true
}

// noFitError renders the no-dimension-fits diagnostic. A width forced
// by wave grouping names itself: a k=8 machine rejecting a 4-wide box
// because the wave search pinned width 2 would otherwise misdirect
// debugging toward the machine size.
func noFitError(op int, module string, k, forceWidth int) error {
	if forceWidth > 0 {
		return fmt.Errorf("coarse: op %d of %s has no dimension fitting k=%d with width %d forced by wave grouping",
			op, module, k, forceWidth)
	}
	return fmt.Errorf("coarse: op %d of %s has no dimension fitting k=%d", op, module, k)
}

// sameDims reports whether two blackboxes offer identical options.
func sameDims(a, b Dims) bool {
	if len(a.Widths) != len(b.Widths) {
		return false
	}
	for i := range a.Widths {
		if a.Widths[i] != b.Widths[i] || a.Lengths[i] != b.Lengths[i] {
			return false
		}
	}
	return true
}

// freeRegionsAt counts regions idle at time t.
func freeRegionsAt(freeAt []int64, t int64) int {
	n := 0
	for _, f := range freeAt {
		if f <= t {
			n++
		}
	}
	return n
}

// waveWidth is Algorithm 3's combination search specialized to a wave of
// count identical blackboxes on kFree idle regions: pick the width
// minimizing the wave makespan ceil(count/floor(kFree/w))·L(w). Returns
// 0 (no constraint) when no option fits.
func waveWidth(d Dims, count, kFree int) int {
	if kFree < 1 {
		return 0
	}
	best := 0
	bestSpan := int64(math.MaxInt64)
	for j, w := range d.Widths {
		lanes := kFree / w
		if lanes < 1 {
			continue
		}
		waves := int64((count + lanes - 1) / lanes)
		span := satMul(waves, d.Lengths[j])
		if span < bestSpan || (span == bestSpan && w < best) {
			bestSpan = span
			best = w
		}
	}
	return best
}

// peakWidth sweeps placements to find the maximal number of
// simultaneously claimed regions.
func peakWidth(ps []Placement, k int) int {
	type ev struct {
		t int64
		d int
	}
	events := make([]ev, 0, 2*len(ps))
	for _, p := range ps {
		if p.Length == 0 {
			continue
		}
		events = append(events, ev{t: p.Start, d: p.Width}, ev{t: p.Start + p.Length, d: -p.Width})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].d < events[b].d // process releases first
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.d
		if cur > peak {
			peak = cur
		}
	}
	if peak > k {
		peak = k
	}
	return peak
}

// buildBoxes computes the flexible dimensions of each op in the module:
// gates are 1-wide boxes of GateCost·count cycles; calls expand their
// callee dims by the repetition count plus the per-invocation overhead.
func buildBoxes(m *ir.Module, opts Options) ([]Dims, error) {
	boxes := make([]Dims, len(m.Ops))
	for i := range m.Ops {
		op := &m.Ops[i]
		switch op.Kind {
		case ir.GateOp:
			boxes[i] = Dims{Widths: []int{1}, Lengths: []int64{satMul(opts.Cost.GateCost, op.EffCount())}}
		case ir.CallOp:
			if opts.Dims == nil {
				return nil, fmt.Errorf("coarse: module %s calls %s but no dims source provided", m.Name, op.Callee)
			}
			d, err := opts.Dims(op.Callee)
			if err != nil {
				return nil, err
			}
			if len(d.Widths) == 0 {
				return nil, fmt.Errorf("coarse: empty dims for callee %s", op.Callee)
			}
			expanded := Dims{Widths: append([]int(nil), d.Widths...), Lengths: make([]int64, len(d.Lengths))}
			for j, l := range d.Lengths {
				expanded.Lengths[j] = satMul(l+opts.Cost.CallOverhead, op.EffCount())
			}
			boxes[i] = expanded
		}
	}
	return boxes, nil
}

// buildDeps returns, per op, the set of ops it depends on (last toucher
// of each shared slot).
func buildDeps(m *ir.Module) []map[int]bool {
	preds := make([]map[int]bool, len(m.Ops))
	last := make([]int, m.TotalSlots())
	for s := range last {
		last[s] = -1
	}
	touch := func(i, slot int) {
		if p := last[slot]; p >= 0 {
			if preds[i] == nil {
				preds[i] = map[int]bool{}
			}
			preds[i][p] = true
		}
	}
	for i := range m.Ops {
		op := &m.Ops[i]
		for _, s := range op.Args {
			touch(i, s)
		}
		for _, r := range op.CallArgs {
			for s := r.Start; s < r.Start+r.Len; s++ {
				touch(i, s)
			}
		}
		for _, s := range op.Args {
			last[s] = i
		}
		for _, r := range op.CallArgs {
			for s := r.Start; s < r.Start+r.Len; s++ {
				last[s] = i
			}
		}
	}
	return preds
}

// priorityOrder sorts ops by criticality: descending height in the
// coarse DAG weighted by minimal box length, repaired to a
// dependency-respecting order that always picks the highest-priority
// ready op.
func priorityOrder(boxes []Dims, preds []map[int]bool) []int {
	n := len(boxes)
	succs := make([][]int, n)
	for i, ps := range preds {
		for p := range ps {
			succs[p] = append(succs[p], i)
		}
	}
	height := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		var h int64
		for _, s := range succs[i] {
			if height[s] > h {
				h = height[s]
			}
		}
		_, l, _ := boxes[i].Best(math.MaxInt32)
		height[i] = h + l
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if height[ia] != height[ib] {
			return height[ia] > height[ib]
		}
		return ia < ib
	})
	return topoByPriority(order, preds, succs)
}

// topoByPriority emits ops in dependency-respecting order, always
// picking the highest-priority ready op next.
func topoByPriority(priority []int, preds []map[int]bool, succs [][]int) []int {
	n := len(priority)
	rank := make([]int, n)
	for r, op := range priority {
		rank[op] = r
	}
	pend := make([]int, n)
	for i, ps := range preds {
		pend[i] = len(ps)
	}
	heap := &rankHeap{rank: rank}
	for i := 0; i < n; i++ {
		if pend[i] == 0 {
			heap.push(i)
		}
	}
	out := make([]int, 0, n)
	for heap.len() > 0 {
		i := heap.pop()
		out = append(out, i)
		for _, s := range succs[i] {
			pend[s]--
			if pend[s] == 0 {
				heap.push(s)
			}
		}
	}
	return out
}

type rankHeap struct {
	rank []int
	data []int
}

func (h *rankHeap) len() int { return len(h.data) }

func (h *rankHeap) less(a, b int) bool { return h.rank[h.data[a]] < h.rank[h.data[b]] }

func (h *rankHeap) push(x int) {
	h.data = append(h.data, x)
	i := len(h.data) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

func (h *rankHeap) pop() int {
	top := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	h.data = h.data[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.data) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.data) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.data[i], h.data[smallest] = h.data[smallest], h.data[i]
		i = smallest
	}
	return top
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
