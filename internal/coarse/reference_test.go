package coarse

// referenceSchedule is the pre-refactor coarse scheduler, preserved as
// the differential oracle: it differs from Schedule only in the
// placement kernel, which copy-sorted freeAt and a (region, free) slice
// per placement instead of running the placer's heap selection. The
// corpus test pins the two bit-identical.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

func referenceSchedule(m *ir.Module, opts Options) (*Result, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("coarse: k must be >= 1, got %d", opts.K)
	}
	if opts.Cost.GateCost <= 0 {
		return nil, fmt.Errorf("coarse: gate cost must be positive")
	}
	n := len(m.Ops)
	res := &Result{}
	if n == 0 {
		return res, nil
	}
	boxes, err := buildBoxes(m, opts)
	if err != nil {
		return nil, err
	}
	preds := buildDeps(m)
	order := priorityOrder(boxes, preds)

	freeAt := make([]int64, opts.K)
	finish := make([]int64, n)
	res.Placements = make([]Placement, n)
	readyAt := func(i int) int64 {
		var te int64
		for p := range preds[i] {
			if finish[p] > te {
				te = finish[p]
			}
		}
		return te
	}
	place := func(i int, te int64, forceWidth int) error {
		bestFinish := int64(math.MaxInt64)
		bestStart := int64(0)
		bestW, bestL := 0, int64(0)
		d := boxes[i]
		sorted := append([]int64(nil), freeAt...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for j, w := range d.Widths {
			if w > opts.K || (forceWidth > 0 && w != forceWidth) {
				continue
			}
			start := sorted[w-1]
			if te > start {
				start = te
			}
			f := start + d.Lengths[j]
			if f < bestFinish || (f == bestFinish && w < bestW) {
				bestFinish, bestStart, bestW, bestL = f, start, w, d.Lengths[j]
			}
		}
		if bestW == 0 {
			return fmt.Errorf("coarse: op %d of %s has no dimension fitting k=%d", i, m.Name, opts.K)
		}
		type rt struct {
			r    int
			free int64
		}
		regs := make([]rt, opts.K)
		for r := range freeAt {
			regs[r] = rt{r: r, free: freeAt[r]}
		}
		sort.Slice(regs, func(a, b int) bool { return regs[a].free < regs[b].free })
		for claimed := 0; claimed < bestW; claimed++ {
			freeAt[regs[claimed].r] = bestFinish
		}
		finish[i] = bestFinish
		res.Placements[i] = Placement{OpIndex: i, Start: bestStart, Width: bestW, Length: bestL}
		if bestFinish > res.Length {
			res.Length = bestFinish
		}
		return nil
	}

	for idx := 0; idx < len(order); {
		i := order[idx]
		te := readyAt(i)
		wave := []int{i}
		inWave := map[int]bool{i: true}
	grow:
		for j := idx + 1; j < len(order); j++ {
			cand := order[j]
			if !sameDims(boxes[cand], boxes[i]) {
				break
			}
			for p := range preds[cand] {
				if inWave[p] {
					break grow
				}
			}
			if readyAt(cand) != te {
				break
			}
			wave = append(wave, cand)
			inWave[cand] = true
		}
		forced := 0
		if len(wave) > 1 {
			forced = waveWidth(boxes[i], len(wave), freeRegionsAt(freeAt, te))
		}
		for _, w := range wave {
			if err := place(w, readyAt(w), forced); err != nil {
				return nil, err
			}
		}
		idx += len(wave)
	}
	res.Width = peakWidth(res.Placements, opts.K)
	return res, nil
}

// randomCoarseModule builds a seeded non-leaf: gates and calls to a
// small callee set over overlapping ranges, so waves, pipelined chains
// and congested regions all occur.
func randomCoarseModule(rng *rand.Rand, nOps int) (*ir.Module, map[string]Dims) {
	m := ir.NewModule("rand", nil, []ir.Reg{{Name: "q", Size: 24}})
	dims := map[string]Dims{
		"a": {Widths: []int{1}, Lengths: []int64{int64(1 + rng.Intn(30))}},
		"b": {Widths: []int{1, 2}, Lengths: []int64{int64(20 + rng.Intn(40)), int64(10 + rng.Intn(10))}},
		"c": {Widths: []int{1, 2, 4}, Lengths: []int64{90, 50, int64(20 + rng.Intn(15))}},
	}
	names := []string{"a", "b", "c"}
	for i := 0; i < nOps; i++ {
		if rng.Intn(4) == 0 {
			m.Gate(qasm.H, rng.Intn(24))
			continue
		}
		callee := names[rng.Intn(len(names))]
		ln := 2 + rng.Intn(3)
		start := rng.Intn(24 - ln)
		if rng.Intn(3) == 0 {
			m.CallN(callee, int64(1+rng.Intn(5)), ir.Range{Start: start, Len: ln})
		} else {
			m.Call(callee, ir.Range{Start: start, Len: ln})
		}
	}
	return m, dims
}

// TestHeapPlacementMatchesReference pins the heap-selection placer to
// the pre-refactor double-sort implementation: identical Results
// (length, width, every placement) across a seeded corpus of random
// call-heavy modules, machine sizes and both cost models.
func TestHeapPlacementMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, dims := randomCoarseModule(rng, 40+rng.Intn(80))
		src := func(callee string) (Dims, error) { return dims[callee], nil }
		for _, k := range []int{1, 2, 3, 4, 8} {
			for _, cost := range []CostModel{ZeroComm, WithComm} {
				opts := Options{K: k, Cost: cost, Dims: src}
				want, err := referenceSchedule(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Schedule(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d k=%d cost=%+v: heap placement diverges\n got: %+v\nwant: %+v",
						seed, k, cost, got, want)
				}
			}
		}
	}
}

// TestNoFitDiagnostics covers both failure modes of the placement
// error: an oversized box with no constraint, and a miss caused by a
// width forced by wave grouping — the latter must name the forced width
// instead of blaming k.
func TestNoFitDiagnostics(t *testing.T) {
	// Unforced: every width exceeds k. End-to-end through Schedule.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	m.Call("wide", ir.Range{Start: 0, Len: 2})
	dims := func(string) (Dims, error) {
		return Dims{Widths: []int{4, 8}, Lengths: []int64{10, 6}}, nil
	}
	_, err := Schedule(m, Options{K: 2, Cost: ZeroComm, Dims: dims})
	if err == nil {
		t.Fatal("expected no-fit error")
	}
	want := "coarse: op 0 of m has no dimension fitting k=2"
	if err.Error() != want {
		t.Errorf("unforced diagnostic = %q, want %q", err, want)
	}

	// Forced: the same box fits k, but a wave-grouping constraint pins a
	// width the box does not offer. The scheduler only forces widths
	// drawn from the box's own options, so this arm is exercised at the
	// placement kernel directly.
	pl := newPlacer(4)
	if _, ok := pl.place(Dims{Widths: []int{4}, Lengths: []int64{10}}, 0, 2); ok {
		t.Fatal("expected forced-width miss")
	}
	err = noFitError(3, "m", 4, 2)
	wantForced := "coarse: op 3 of m has no dimension fitting k=4 with width 2 forced by wave grouping"
	if err.Error() != wantForced {
		t.Errorf("forced diagnostic = %q, want %q", err, wantForced)
	}
}

// TestPlacerSteadyStateAllocs guards the placement kernel: placing
// through a warmed placer allocates nothing.
func TestPlacerSteadyStateAllocs(t *testing.T) {
	pl := newPlacer(8)
	d := Dims{Widths: []int{1, 2, 4}, Lengths: []int64{40, 24, 16}}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := pl.place(d, 0, 0); !ok {
			t.Fatal("placement failed")
		}
	})
	if allocs != 0 {
		t.Errorf("place allocates %.0f times per call, want 0", allocs)
	}
}
