package coarse_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/coarse"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// fixedDims returns a Dims source with one serial option per callee.
func fixedDims(lengths map[string]int64) func(string) (coarse.Dims, error) {
	return func(callee string) (coarse.Dims, error) {
		return coarse.Dims{Widths: []int{1}, Lengths: []int64{lengths[callee]}}, nil
	}
}

func TestSerialChainOfCalls(t *testing.T) {
	// Three dependent calls on the same register: length sums.
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 2}})
	for i := 0; i < 3; i++ {
		m.Call("f", ir.Range{Start: 0, Len: 2})
	}
	p.Add(m)
	res, err := coarse.Schedule(m, coarse.Options{
		K: 4, Cost: coarse.ZeroComm, Dims: fixedDims(map[string]int64{"f": 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 30 || res.Width != 1 {
		t.Errorf("length=%d width=%d", res.Length, res.Width)
	}
}

func TestIndependentCallsParallelize(t *testing.T) {
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 8}})
	for i := 0; i < 4; i++ {
		m.Call("f", ir.Range{Start: i * 2, Len: 2})
	}
	for _, k := range []int{1, 2, 4} {
		res, err := coarse.Schedule(m, coarse.Options{
			K: k, Cost: coarse.ZeroComm, Dims: fixedDims(map[string]int64{"f": 10}),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(10 * (4 / k))
		if res.Length != want {
			t.Errorf("k=%d: length %d, want %d", k, res.Length, want)
		}
	}
}

func TestPipelinedChainsShareRegions(t *testing.T) {
	// Two staggered dependent chains A1->A2->A3, B1->B2->B3 on separate
	// registers: k=2 runs both concurrently at length 30, and critically
	// k=2 must NOT serialize to 60 (the rectangular-group failure mode).
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 3; i++ {
		m.Call("f", ir.Range{Start: 0, Len: 2})
		m.Call("f", ir.Range{Start: 2, Len: 2})
	}
	res, err := coarse.Schedule(m, coarse.Options{
		K: 2, Cost: coarse.ZeroComm, Dims: fixedDims(map[string]int64{"f": 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 30 {
		t.Errorf("length %d, want 30", res.Length)
	}
	if res.Width != 2 {
		t.Errorf("width %d, want 2", res.Width)
	}
}

func TestFlexibleWidthChoice(t *testing.T) {
	// A callee that runs 10 cycles wide (4 regions) or 30 narrow
	// (1 region). Alone on k=4 it should pick wide; four independent
	// instances on k=4 should pick narrow (4x30 parallel = 30 beats
	// 4x10 serialized = 40).
	dims := func(string) (coarse.Dims, error) {
		return coarse.Dims{Widths: []int{1, 4}, Lengths: []int64{30, 10}}, nil
	}
	single := ir.NewModule("s", nil, []ir.Reg{{Name: "q", Size: 2}})
	single.Call("f", ir.Range{Start: 0, Len: 2})
	res, err := coarse.Schedule(single, coarse.Options{K: 4, Cost: coarse.ZeroComm, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 10 {
		t.Errorf("single: length %d, want 10 (wide)", res.Length)
	}
	multi := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 8}})
	for i := 0; i < 4; i++ {
		multi.Call("f", ir.Range{Start: i * 2, Len: 2})
	}
	res, err = coarse.Schedule(multi, coarse.Options{K: 4, Cost: coarse.ZeroComm, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 30 {
		t.Errorf("multi: length %d, want 30 (narrow, fully parallel)", res.Length)
	}
}

func TestGateAndCallCosts(t *testing.T) {
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Call("f", ir.Range{Start: 0, Len: 2})
	dims := fixedDims(map[string]int64{"f": 10})
	zero, err := coarse.Schedule(m, coarse.Options{K: 1, Cost: coarse.ZeroComm, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Length != 11 {
		t.Errorf("zero-comm length %d, want 11", zero.Length)
	}
	wc, err := coarse.Schedule(m, coarse.Options{K: 1, Cost: coarse.WithComm, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	// Gate 5 + call (10 + 4 flush) = 19.
	if wc.Length != 19 {
		t.Errorf("with-comm length %d, want 19", wc.Length)
	}
}

func TestCountMultiplier(t *testing.T) {
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.CallN("f", 1000, ir.Range{Start: 0, Len: 2})
	res, err := coarse.Schedule(m, coarse.Options{
		K: 4, Cost: coarse.ZeroComm, Dims: fixedDims(map[string]int64{"f": 7}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 7000 {
		t.Errorf("length %d, want 7000", res.Length)
	}
}

func TestMissingDims(t *testing.T) {
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Call("f", ir.Range{Start: 0, Len: 1})
	if _, err := coarse.Schedule(m, coarse.Options{K: 1, Cost: coarse.ZeroComm}); err == nil {
		t.Error("missing dims source not caught")
	}
}

func TestEmptyModule(t *testing.T) {
	m := ir.NewModule("main", nil, nil)
	res, err := coarse.Schedule(m, coarse.Options{K: 2, Cost: coarse.ZeroComm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 0 || res.Width != 0 {
		t.Errorf("empty: %+v", res)
	}
}

func TestPlacementsRespectDependencies(t *testing.T) {
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 4}})
	m.Call("f", ir.Range{Start: 0, Len: 2}) // A
	m.Call("f", ir.Range{Start: 2, Len: 2}) // B independent of A
	m.Call("f", ir.Range{Start: 1, Len: 2}) // C depends on A and B
	res, err := coarse.Schedule(m, coarse.Options{
		K: 2, Cost: coarse.ZeroComm, Dims: fixedDims(map[string]int64{"f": 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[int]coarse.Placement{}
	for _, pl := range res.Placements {
		byOp[pl.OpIndex] = pl
	}
	if byOp[2].Start < byOp[0].Start+byOp[0].Length || byOp[2].Start < byOp[1].Start+byOp[1].Length {
		t.Errorf("dependent op starts early: %+v", res.Placements)
	}
	if res.Length != 10 {
		t.Errorf("length %d, want 10", res.Length)
	}
}

func TestSerialSameDimsChainPicksFastWidth(t *testing.T) {
	// Regression: a serial chain of identical blackboxes must not be
	// mistaken for a parallel wave and forced narrow; each link should
	// use the width that minimizes its own length.
	dims := func(string) (coarse.Dims, error) {
		return coarse.Dims{Widths: []int{1, 2}, Lengths: []int64{382, 301}}, nil
	}
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 2}})
	for i := 0; i < 12; i++ {
		m.Call("f", ir.Range{Start: 0, Len: 2})
	}
	res, err := coarse.Schedule(m, coarse.Options{K: 4, Cost: coarse.ZeroComm, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 12*301 {
		t.Errorf("length %d, want %d", res.Length, 12*301)
	}
}

func TestWaveOfIdenticalBoxesBalancesWidths(t *testing.T) {
	// 12 independent identical boxes on k=4: narrow (length 30, w=1)
	// packs 4 lanes x 3 waves = 90; wide (length 10, w=4) serializes
	// 12 x 10 = 120. The joint choice must pick narrow.
	dims := func(string) (coarse.Dims, error) {
		return coarse.Dims{Widths: []int{1, 4}, Lengths: []int64{30, 10}}, nil
	}
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 24}})
	for i := 0; i < 12; i++ {
		m.Call("f", ir.Range{Start: i * 2, Len: 2})
	}
	res, err := coarse.Schedule(m, coarse.Options{K: 4, Cost: coarse.ZeroComm, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 90 {
		t.Errorf("length %d, want 90", res.Length)
	}
}
