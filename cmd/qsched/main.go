// Command qsched explores Multi-SIMD schedules interactively: it
// compiles a Scaffold-lite program (or built-in benchmark), evaluates it
// hierarchically under a chosen scheduler and machine configuration, and
// prints the full metric set — the per-run core of the paper's
// evaluation flow.
//
// Usage:
//
//	qsched -bench SHA-1 -sched lpfs -k 4 -local -1
//	qsched -sched rcp -k 2 program.scf
//
// Flags:
//
//	-sched rcp|lpfs  fine-grained scheduler (default lpfs)
//	-k N             SIMD regions (default 4)
//	-d N             qubits per region per step (default 0 = unlimited)
//	-local N         scratchpad capacity per region (0 none, -1 unlimited)
//	-fth N           flattening threshold (default 2000 for exploration)
//	-entry name      entry module (default "main")
//	-verify          run the independent legality oracle over every leaf
//	                 schedule and move list; failures name the module,
//	                 step, region and op
//	-report out.html       self-contained HTML schedule report (SVG
//	                       timeline with move arrows, utilization,
//	                       move/slack analytics; no external assets)
//	-report-json out.json  the same analytics as versioned JSON
//	                       (schema in internal/report)
//
// Observability (see DESIGN.md):
//
//	-trace out.json        Chrome trace-event timeline (Perfetto-loadable)
//	-metrics-out m.json    JSON metrics snapshot on exit
//	-metrics-addr :9090    live Prometheus endpoint during the run
//	-pprof-addr :6060      live net/http/pprof endpoint during the run
//	-decisions d.log       scheduler decision log (-decision-level step|op)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/epr"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obscli"
	"github.com/scaffold-go/multisimd/internal/report"
	"github.com/scaffold-go/multisimd/internal/request"
)

// config gathers the full flag surface: the shared request.Config (the
// same struct qschedd's JSON handlers decode, so CLI and service
// requests validate through one path) plus the CLI-only extras.
type config struct {
	req      request.Config
	dump     string
	report   string
	reportJS string
	obs      obscli.Flags
	args     []string
}

// benchmarkLabel names the run in report artifacts: the -bench name, or
// the source file's base name.
func (cfg config) benchmarkLabel() string {
	if cfg.req.Bench != "" {
		return cfg.req.Bench
	}
	if len(cfg.args) == 1 {
		return filepath.Base(cfg.args[0])
	}
	return "program"
}

func main() {
	var cfg config
	cfg.req.RegisterFlags(flag.CommandLine)
	flag.StringVar(&cfg.dump, "dump", "", "dump the fine-grained schedule of the named leaf module (timesteps, regions, move list)")
	flag.StringVar(&cfg.report, "report", "", "write a self-contained HTML schedule report (timeline, utilization, move analytics) to this `file`")
	flag.StringVar(&cfg.reportJS, "report-json", "", "write the versioned JSON schedule report to this `file`")
	cfg.obs.Register(flag.CommandLine)
	flag.Parse()
	cfg.args = flag.Args()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "qsched:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	req := cfg.req
	switch {
	case len(cfg.args) == 1 && req.Bench == "":
		data, err := os.ReadFile(cfg.args[0])
		if err != nil {
			return err
		}
		req.Source = string(data)
	case len(cfg.args) > 0:
		return fmt.Errorf("expected one source file or -bench name")
	}
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return err
	}
	obsv, err := cfg.obs.Setup(os.Stderr)
	if err != nil {
		return err
	}

	prog, err := req.Build(obsv)
	if err != nil {
		return err
	}
	eopts, err := req.EvalOptions()
	if err != nil {
		return err
	}
	sched := core.WithDecisionLog(eopts.Scheduler, obsv.D())
	eopts.Scheduler = sched
	eopts.Obs = obsv
	if cfg.dump != "" {
		return dumpLeaf(prog, cfg.dump, sched, req.K, req.D, req.Local)
	}
	if cfg.report != "" || cfg.reportJS != "" {
		eopts.Profile = report.NewCollector()
	}
	m, err := core.Evaluate(prog, eopts)
	if err != nil {
		return err
	}
	if err := cfg.obs.Finish(obsv); err != nil {
		return err
	}
	if eopts.Profile != nil {
		r := core.BuildReport(eopts.Profile, cfg.benchmarkLabel(), m, eopts)
		if cfg.report != "" {
			if err := r.WriteHTMLFile(cfg.report); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "qsched: HTML schedule report written to %s\n", cfg.report)
		}
		if cfg.reportJS != "" {
			if err := r.WriteJSONFile(cfg.reportJS); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "qsched: JSON schedule report written to %s\n", cfg.reportJS)
		}
	}

	fmt.Printf("scheduler:           %s\n", sched.Name())
	if req.Verify {
		fmt.Printf("verification:        every leaf schedule and move list legal\n")
	}
	fmt.Printf("machine:             Multi-SIMD(%d,%s), local capacity %s\n", req.K, dStr(req.D), capStr(req.Local))
	fmt.Printf("modules / leaves:    %d / %d\n", m.Modules, m.Leaves)
	fmt.Printf("total gates:         %d\n", m.TotalGates)
	fmt.Printf("min qubits Q:        %d\n", m.MinQubits)
	fmt.Printf("critical path:       %d\n", m.CriticalPath)
	fmt.Printf("sequential cycles:   %d\n", m.SeqCycles)
	fmt.Printf("naive-move cycles:   %d\n", m.NaiveCycles)
	fmt.Printf("scheduled steps:     %d  (zero-cost communication)\n", m.ZeroCommSteps)
	fmt.Printf("comm-aware cycles:   %d\n", m.CommCycles)
	fmt.Printf("global moves (EPR):  %d\n", m.GlobalMoves)
	fmt.Printf("local moves:         %d\n", m.LocalMoves)
	fmt.Printf("speedup vs seq:      %.2fx (cp bound %.2fx)\n", m.SpeedupVsSeq(), m.CPSpeedup())
	fmt.Printf("speedup vs naive:    %.2fx\n", m.SpeedupVsNaive())
	return nil
}

func dStr(d int) string {
	if d == 0 {
		return "inf"
	}
	return fmt.Sprint(d)
}

func capStr(c int) string {
	switch {
	case c < 0:
		return "unlimited"
	case c == 0:
		return "none"
	default:
		return fmt.Sprint(c)
	}
}

// dumpLeaf prints the fine-grained schedule of one leaf module in the
// paper's timestep/region/move-list format.
func dumpLeaf(prog *ir.Program, name string, sched core.Scheduler, k, d, local int) error {
	mod := prog.Module(name)
	if mod == nil {
		var leaves []string
		for _, n := range prog.Order {
			if prog.Modules[n].IsLeaf() {
				leaves = append(leaves, n)
			}
		}
		return fmt.Errorf("no module %q; leaf modules: %s", name, strings.Join(leaves, ", "))
	}
	if !mod.IsLeaf() {
		return fmt.Errorf("module %q is not a leaf; only fine-grained schedules can be dumped", name)
	}
	mat, err := mod.Materialize(1 << 22)
	if err != nil {
		return err
	}
	g, err := dag.Build(mat)
	if err != nil {
		return err
	}
	s, err := sched.Schedule(mat, g, k, d)
	if err != nil {
		return err
	}
	res, err := comm.Analyze(s, comm.Options{LocalCapacity: local})
	if err != nil {
		return err
	}
	fmt.Printf("# %s: %d ops, cp %d, %d steps, %d cycles with movement (%d teleports, %d local moves)\n",
		name, g.Len(), g.CriticalPath(), s.Length(), res.Cycles, res.GlobalMoves, res.LocalMoves)
	plan, err := epr.Build(s, res, epr.Config{Bandwidth: 2, Latency: 1})
	if err != nil {
		return err
	}
	fmt.Printf("# EPR pre-distribution (bandwidth 2/cycle, latency 1): %d pairs, %d issued before t0, peak buffer %d\n",
		plan.Pairs, plan.PreIssued, plan.MaxBuffered)
	return comm.WriteSchedule(os.Stdout, s, res)
}
