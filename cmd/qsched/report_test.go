package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/report"
)

// TestRunReportAllBenchmarks is the acceptance gate for -report: every
// bundled benchmark must render a self-contained HTML report (no
// external assets) and a JSON report that passes schema validation.
func TestRunReportAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark report sweep is slow; run without -short")
	}
	dir := t.TempDir()
	for _, b := range bench.AllSmall() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cfg := testConfig("lpfs", b.Name, "", false)
			cfg.report = filepath.Join(dir, b.Name+".html")
			cfg.reportJS = filepath.Join(dir, b.Name+".json")
			if err := run(cfg); err != nil {
				t.Fatal(err)
			}

			data, err := os.ReadFile(cfg.report)
			if err != nil {
				t.Fatal(err)
			}
			html := string(data)
			for _, banned := range []string{"<script", "<link", "<img", "http://", "https://", "url(", "@import", "src="} {
				if strings.Contains(html, banned) {
					t.Errorf("HTML report contains %q — not self-contained", banned)
				}
			}
			for _, want := range []string{"<svg", b.Name} {
				if !strings.Contains(html, want) {
					t.Errorf("HTML report missing %q", want)
				}
			}

			r, err := report.ReadFile(cfg.reportJS)
			if err != nil {
				t.Fatal(err)
			}
			if r.Benchmark != b.Name || len(r.Modules) == 0 {
				t.Errorf("JSON report: benchmark %q with %d modules", r.Benchmark, len(r.Modules))
			}
		})
	}
}

// TestRunReportJSONOnly exercises the -report-json flag alone, with
// verification on so the profiled numbers ride on checked move lists.
func TestRunReportJSONOnly(t *testing.T) {
	cfg := testConfig("rcp", "Grovers", "", true)
	cfg.reportJS = filepath.Join(t.TempDir(), "g.json")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	r, err := report.ReadFile(cfg.reportJS)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheduler != "rcp" || r.K != 4 {
		t.Errorf("report config %s/k=%d, want rcp/4", r.Scheduler, r.K)
	}
}
