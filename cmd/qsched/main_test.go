package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/request"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// testConfig fills the defaults the flag declarations would.
func testConfig(schedName, benchName, dump string, verify bool) config {
	return config{
		req: request.Config{
			Scheduler: schedName, K: 4, Local: -1, FTh: 2000,
			Entry: "main", Bench: benchName, Verify: verify,
		},
		dump: dump,
	}
}

func TestRunEvaluation(t *testing.T) {
	for _, sched := range []string{"rcp", "lpfs"} {
		if err := run(testConfig(sched, "Grovers", "", false)); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
	}
}

func TestRunDump(t *testing.T) {
	cfg := testConfig("lpfs", "BWT", "walk_step", false)
	cfg.req.K = 2
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig("lpfs", "Grovers", "", false)
	cfg.obs.Trace = dir + "/trace.json"
	cfg.obs.MetricsOut = dir + "/metrics.json"
	cfg.obs.Decisions = dir + "/decisions.log"
	cfg.obs.DecisionLevel = "op"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cfg.obs.Trace, cfg.obs.MetricsOut, cfg.obs.Decisions} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	data, _ := os.ReadFile(cfg.obs.Trace)
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("-trace output has no events")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(testConfig("quantum", "Grovers", "", false)); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run(testConfig("lpfs", "", "", false)); err == nil {
		t.Error("no input accepted")
	}
	if err := run(testConfig("lpfs", "NotABench", "", false)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(testConfig("lpfs", "BWT", "no_such_module", false)); err == nil {
		t.Error("unknown dump module accepted")
	}
	if err := run(testConfig("lpfs", "BWT", "main", false)); err == nil {
		t.Error("non-leaf dump accepted")
	}
	bad := testConfig("lpfs", "Grovers", "", false)
	bad.obs.DecisionLevel = "verbose"
	if err := run(bad); err == nil {
		t.Error("bad -decision-level accepted")
	}
}

// TestRunVerify exercises the -verify flag: the real schedulers pass the
// legality oracle on a benchmark run.
func TestRunVerify(t *testing.T) {
	for _, sched := range []string{"rcp", "lpfs"} {
		if err := run(testConfig(sched, "Grovers", "", true)); err != nil {
			t.Errorf("%s -verify: %v", sched, err)
		}
	}
}

// evilScheduler emits every op in its own timestep in reverse program
// order — a deliberately illegal schedule (dependencies run backwards)
// for testing that -verify rejects it.
type evilScheduler struct{}

func (evilScheduler) Name() string { return "evil" }

func (evilScheduler) Schedule(m *ir.Module, g *dag.Graph, k, d int) (*schedule.Schedule, error) {
	s := &schedule.Schedule{M: m, K: k, D: d}
	for op := len(m.Ops) - 1; op >= 0; op-- {
		s.Steps = append(s.Steps, schedule.Step{Regions: [][]int32{{int32(op)}}})
	}
	return s, nil
}

func init() { schedule.Register(evilScheduler{}) }

// TestRunVerifyRejectsIllegalSchedule is the acceptance gate for the
// -verify flag: a scheduler producing an illegal schedule must fail the
// run with a located (module, step, op) diagnostic, and must sail
// through unnoticed when verification is off.
func TestRunVerifyRejectsIllegalSchedule(t *testing.T) {
	err := run(testConfig("evil", "Grovers", "", true))
	if err == nil {
		t.Fatal("-verify accepted a reverse-order schedule")
	}
	msg := err.Error()
	for _, want := range []string{"verify:", "dependency-order", "step", "op"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q lacks %q", msg, want)
		}
	}
	// Without -verify the illegal schedule goes undetected — the very
	// gap the oracle exists to close.
	if err := run(testConfig("evil", "Grovers", "", false)); err != nil {
		t.Errorf("unverified run surfaced an unexpected error: %v", err)
	}
}
