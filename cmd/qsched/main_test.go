package main

import (
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func TestRunEvaluation(t *testing.T) {
	for _, sched := range []string{"rcp", "lpfs"} {
		if err := run(sched, 4, 0, -1, 2000, "main", "Grovers", "", false, nil); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
	}
}

func TestRunDump(t *testing.T) {
	if err := run("lpfs", 2, 0, -1, 2000, "main", "BWT", "walk_step", false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("quantum", 4, 0, 0, 2000, "main", "Grovers", "", false, nil); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run("lpfs", 4, 0, 0, 2000, "main", "", "", false, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("lpfs", 4, 0, 0, 2000, "main", "NotABench", "", false, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("lpfs", 2, 0, 0, 2000, "main", "BWT", "no_such_module", false, nil); err == nil {
		t.Error("unknown dump module accepted")
	}
	if err := run("lpfs", 2, 0, 0, 2000, "main", "BWT", "main", false, nil); err == nil {
		t.Error("non-leaf dump accepted")
	}
}

// TestRunVerify exercises the -verify flag: the real schedulers pass the
// legality oracle on a benchmark run.
func TestRunVerify(t *testing.T) {
	for _, sched := range []string{"rcp", "lpfs"} {
		if err := run(sched, 4, 0, -1, 2000, "main", "Grovers", "", true, nil); err != nil {
			t.Errorf("%s -verify: %v", sched, err)
		}
	}
}

// evilScheduler emits every op in its own timestep in reverse program
// order — a deliberately illegal schedule (dependencies run backwards)
// for testing that -verify rejects it.
type evilScheduler struct{}

func (evilScheduler) Name() string { return "evil" }

func (evilScheduler) Schedule(m *ir.Module, g *dag.Graph, k, d int) (*schedule.Schedule, error) {
	s := &schedule.Schedule{M: m, K: k, D: d}
	for op := len(m.Ops) - 1; op >= 0; op-- {
		s.Steps = append(s.Steps, schedule.Step{Regions: [][]int32{{int32(op)}}})
	}
	return s, nil
}

func init() { schedule.Register(evilScheduler{}) }

// TestRunVerifyRejectsIllegalSchedule is the acceptance gate for the
// -verify flag: a scheduler producing an illegal schedule must fail the
// run with a located (module, step, op) diagnostic, and must sail
// through unnoticed when verification is off.
func TestRunVerifyRejectsIllegalSchedule(t *testing.T) {
	err := run("evil", 4, 0, 0, 2000, "main", "Grovers", "", true, nil)
	if err == nil {
		t.Fatal("-verify accepted a reverse-order schedule")
	}
	msg := err.Error()
	for _, want := range []string{"verify:", "dependency-order", "step", "op"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q lacks %q", msg, want)
		}
	}
	// Without -verify the illegal schedule goes undetected — the very
	// gap the oracle exists to close.
	if err := run("evil", 4, 0, 0, 2000, "main", "Grovers", "", false, nil); err != nil {
		t.Errorf("unverified run surfaced an unexpected error: %v", err)
	}
}
