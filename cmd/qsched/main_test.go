package main

import "testing"

func TestRunEvaluation(t *testing.T) {
	for _, sched := range []string{"rcp", "lpfs"} {
		if err := run(sched, 4, 0, -1, 2000, "main", "Grovers", "", nil); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
	}
}

func TestRunDump(t *testing.T) {
	if err := run("lpfs", 2, 0, -1, 2000, "main", "BWT", "walk_step", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("quantum", 4, 0, 0, 2000, "main", "Grovers", "", nil); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run("lpfs", 4, 0, 0, 2000, "main", "", "", nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("lpfs", 4, 0, 0, 2000, "main", "NotABench", "", nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("lpfs", 2, 0, 0, 2000, "main", "BWT", "no_such_module", nil); err == nil {
		t.Error("unknown dump module accepted")
	}
	if err := run("lpfs", 2, 0, 0, 2000, "main", "BWT", "main", nil); err == nil {
		t.Error("non-leaf dump accepted")
	}
}
