// Command qbench regenerates every table and figure of the paper's
// evaluation (§5): Fig. 5 (module gate-count histograms and FTh),
// Fig. 6 (parallelism-only speedups vs the critical path), Fig. 7
// (communication-aware speedups over naive movement), Fig. 8 (local
// scratchpad capacity sweep), Fig. 9 (Shor's k-sensitivity), Table 1
// (minimum qubit counts Q) and Table 2 (parallel-rotation
// serialization).
//
// Usage:
//
//	qbench -experiment all            # everything, small-scale workloads
//	qbench -experiment fig7           # one experiment
//	qbench -experiment fig5 -scale paper
//	qbench -experiment table1 -scale paper
//
// Fig. 5 and Table 1 run at the paper's parameterizations when given
// -scale paper (they only need symbolic resource estimation); the
// scheduling experiments always use the scaled-down workloads whose
// leaves can be materialized (see DESIGN.md).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/numa"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/obscli"
	"github.com/scaffold-go/multisimd/internal/report"
	"github.com/scaffold-go/multisimd/internal/request"
	"github.com/scaffold-go/multisimd/internal/resource"
)

// observer instruments every evaluation of the run when any -trace /
// -metrics / -decisions flag was given; buildWorkload stamps it on each
// workload (nil = off).
var observer *obs.Observer

func main() {
	exp := flag.String("experiment", "all", "experiment to run: fig5, fig6, fig7, fig8, fig9, table1, table2, all")
	scale := flag.String("scale", "small", "workload scale for fig5/table1: small or paper")
	fth := flag.Int64("fth", 0, "flattening threshold override (0 = scale default)")
	schedName := flag.String("sched", "lpfs", "scheduler for the extended experiments (registered: rcp, lpfs)")
	workers := flag.Int("workers", 0, "evaluation concurrency (0 = GOMAXPROCS, 1 = serial)")
	perfOut := flag.String("perf-out", "", "write per-benchmark BENCH_<name>.json perf records and REPORT_<name>.json schedule reports into this `dir` instead of running an experiment")
	perfAgainst := flag.String("perf-against", "", "baseline `dir` of committed BENCH_<name>.json records; with -perf-out, fail if any cold or warm wall time regresses more than 25% past the baseline")
	reportAgainst := flag.String("report-against", "", "baseline `dir` of committed REPORT_<name>.json schedule reports; with -perf-out, attribute any schedule-level delta to modules/regions/steps and fail on a schedule regression")
	seedCache := flag.String("seed-cache", "", "write a persistent result-store corpus for the gated benchmarks (request defaults: lpfs, k=4, fth=2000) into this `dir` instead of running an experiment; serve it with qschedd -cache-preload")
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	err := func() error {
		var err error
		observer, err = obsFlags.Setup(os.Stderr)
		if err != nil {
			return err
		}
		if *seedCache != "" {
			return writeSeedCorpus(*seedCache)
		}
		if *perfOut != "" {
			return writePerfRecords(*perfOut, *perfAgainst, *reportAgainst, *schedName, *fth, *workers)
		}
		if *perfAgainst != "" {
			return fmt.Errorf("-perf-against requires -perf-out")
		}
		if *reportAgainst != "" {
			return fmt.Errorf("-report-against requires -perf-out")
		}
		if err := run(*exp, *scale, *fth, *schedName, *workers); err != nil {
			return err
		}
		return obsFlags.Finish(observer)
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		os.Exit(1)
	}
}

func run(exp, scale string, fth int64, schedName string, workers int) error {
	sched, err := core.SchedulerByName(schedName)
	if err != nil {
		return err
	}
	sched = core.WithDecisionLog(sched, observer.D())
	smallFTh := int64(2000)
	if fth != 0 {
		smallFTh = fth
	}
	switch exp {
	case "all":
		for _, e := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2"} {
			if err := run(e, scale, fth, schedName, workers); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "extended":
		for _, e := range []string{"sensd", "sensepr", "ablation", "fth", "numa"} {
			if err := run(e, scale, fth, schedName, workers); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "sensd":
		ws, err := workloads(smallFTh, true, workers)
		if err != nil {
			return err
		}
		rows, err := core.SensD(ws, sched, 4, []int{2, 4, 8, 16, 32, 0})
		if err != nil {
			return err
		}
		fmt.Printf("Sensitivity to d (§5.4): %s, k=4, unlimited local memory, speedup vs naive\n", sched.Name())
		fmt.Printf("%-10s", "benchmark")
		for _, d := range []string{"d=2", "d=4", "d=8", "d=16", "d=32", "d=inf"} {
			fmt.Printf(" %8s", d)
		}
		fmt.Println()
		for i := 0; i < len(rows); i += 6 {
			fmt.Printf("%-10s", rows[i].Name)
			for j := 0; j < 6; j++ {
				fmt.Printf(" %8.2f", rows[i+j].Speedup)
			}
			fmt.Println()
		}
		return nil
	case "sensepr":
		ws, err := workloads(smallFTh, true, workers)
		if err != nil {
			return err
		}
		bws := []int{1, 2, 4, 8, 0}
		rows, err := core.SensEPR(ws, sched, 4, bws)
		if err != nil {
			return err
		}
		fmt.Printf("Sensitivity to EPR distribution bandwidth (§2.3): %s, k=4, speedup vs naive\n", sched.Name())
		fmt.Printf("%-10s", "benchmark")
		for _, bw := range []string{"bw=1", "bw=2", "bw=4", "bw=8", "bw=inf"} {
			fmt.Printf(" %8s", bw)
		}
		fmt.Println()
		for i := 0; i < len(rows); i += len(bws) {
			fmt.Printf("%-10s", rows[i].Name)
			for j := 0; j < len(bws); j++ {
				fmt.Printf(" %8.2f", rows[i+j].Speedup)
			}
			fmt.Println()
		}
		return nil
	case "ablation":
		ws, err := workloads(smallFTh, true, workers)
		if err != nil {
			return err
		}
		lp, err := core.AblationLPFS(ws, 4)
		if err != nil {
			return err
		}
		printAblation("LPFS option ablation (k=4, unlimited local memory, speedup vs naive)", lp, 5)
		rc, err := core.AblationRCP(ws, 4)
		if err != nil {
			return err
		}
		printAblation("RCP weight ablation (k=4, unlimited local memory, speedup vs naive)", rc, 4)
		cm, err := core.AblationComm(ws, sched, 4)
		if err != nil {
			return err
		}
		printAblation("Movement accounting ablation (LPFS, k=4, no local memory)", cm, 2)
		return nil
	case "fth":
		var srcs []core.SourceWorkload
		for _, b := range bench.AllSmall() {
			srcs = append(srcs, core.SourceWorkload{Name: b.Name, Source: b.Source, Pipeline: b.Pipeline})
		}
		fths := []int64{100, 500, 2000, 50000}
		rows, err := core.SweepFTh(srcs, sched, 4, fths)
		if err != nil {
			return err
		}
		fmt.Printf("Flattening threshold sweep (§3.1.1): %s, k=4, speedup vs naive\n", sched.Name())
		fmt.Printf("%-10s %-9s %8s %8s %8s %10s\n", "benchmark", "FTh", "modules", "leaves", "speedup", "analysis")
		for _, r := range rows {
			fmt.Printf("%-10s %-9d %8d %8d %8.2f %8dms\n", r.Name, r.FTh, r.Modules, r.Leaves, r.Speedup, r.AnalysisMS)
		}
		return nil
	case "numa":
		return numaExperiment(smallFTh, sched, workers)
	case "fig5":
		return fig5(scale, fth)
	case "fig6":
		ws, err := workloads(smallFTh, true, workers)
		if err != nil {
			return err
		}
		rows, err := core.Fig6(ws)
		if err != nil {
			return err
		}
		fmt.Println("Figure 6: speedup over sequential execution (zero-cost communication)")
		fmt.Printf("%-10s %-16s %8s %8s %8s %8s %8s\n", "benchmark", "params", "rcp k=2", "rcp k=4", "lpfs k=2", "lpfs k=4", "cp")
		for _, r := range rows {
			fmt.Printf("%-10s %-16s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
				r.Name, r.Params, r.RCP2, r.RCP4, r.LPFS2, r.LPFS4, r.CP)
		}
		return nil
	case "fig7":
		ws, err := workloads(smallFTh, true, workers)
		if err != nil {
			return err
		}
		rows, err := core.Fig7(ws)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7: speedup over sequential naive-movement execution (communication-aware)")
		fmt.Printf("%-10s %-16s %8s %8s %8s %8s\n", "benchmark", "params", "rcp k=2", "rcp k=4", "lpfs k=2", "lpfs k=4")
		for _, r := range rows {
			fmt.Printf("%-10s %-16s %8.2f %8.2f %8.2f %8.2f\n",
				r.Name, r.Params, r.RCP2, r.RCP4, r.LPFS2, r.LPFS4)
		}
		return nil
	case "fig8":
		ws, err := workloads(smallFTh, true, workers)
		if err != nil {
			return err
		}
		rows, err := core.Fig8(ws)
		if err != nil {
			return err
		}
		fmt.Println("Figure 8: speedup over naive movement with local memory, Multi-SIMD(4,inf)")
		fmt.Printf("%-10s %-6s %-5s %8s %8s %8s %8s\n", "benchmark", "Q", "sched", "none", "Q/4", "Q/2", "inf")
		for _, r := range rows {
			fmt.Printf("%-10s %-6d %-5s %8.2f %8.2f %8.2f %8.2f\n",
				r.Name, r.Q, "rcp", r.RCP[0], r.RCP[1], r.RCP[2], r.RCP[3])
			fmt.Printf("%-10s %-6s %-5s %8.2f %8.2f %8.2f %8.2f\n",
				"", "", "lpfs", r.LPFS[0], r.LPFS[1], r.LPFS[2], r.LPFS[3])
		}
		return nil
	case "fig9":
		// A dedicated Shor's instance with a wider exponent register:
		// the k-sensitivity of §5.4 comes from the inverse QFT's many
		// distinct-angle rotation blackboxes.
		b := bench.ShorsSized(4, 16)
		w, err := buildWorkload(b, smallFTh, true, workers)
		if err != nil {
			return err
		}
		rows, err := core.Fig9(w)
		if err != nil {
			return err
		}
		fmt.Println("Figure 9: Shor's speedup over naive movement vs k (with local memory)")
		fmt.Printf("%-6s %-6s %8s\n", "sched", "k", "speedup")
		for _, r := range rows {
			fmt.Printf("%-6s %-6d %8.2f\n", r.Scheduler, r.K, r.Speedup)
		}
		return nil
	case "table1":
		ws, err := scaleWorkloads(scale, 0, false)
		if err != nil {
			return err
		}
		rows, err := core.Table1(ws)
		if err != nil {
			return err
		}
		fmt.Println("Table 1: minimum qubits Q (sequential execution, maximal ancilla reuse)")
		fmt.Printf("%-10s %-16s %10s\n", "benchmark", "params", "Q")
		for _, r := range rows {
			fmt.Printf("%-10s %-16s %10d\n", r.Name, r.Params, r.Q)
		}
		return nil
	case "table2":
		res, err := core.Table2(8, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println("Table 2: parallel rotations serialize after decomposition unless k grows")
		fmt.Printf("%d data-parallel Rz gates on distinct qubits:\n", res.Rotations)
		fmt.Printf("%-6s %12s\n", "k", "steps")
		for _, k := range res.SortedKs() {
			fmt.Printf("%-6d %12d\n", k, res.StepsAtK[k])
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

// numaExperiment compares qubit-to-bank mapping policies on each
// benchmark's largest leaf (the paper's §2.3 future-work direction:
// distributed global memory needs a mapping algorithm).
func numaExperiment(fth int64, sched core.Scheduler, workers int) error {
	ws, err := workloads(fth, true, workers)
	if err != nil {
		return err
	}
	fmt.Printf("Distributed global memory (§2.3 future work): largest leaf, %s k=4, 2 banks\n", sched.Name())
	fmt.Printf("%-10s %10s %12s %12s %12s %12s\n",
		"benchmark", "teleports", "rr far%", "affinity far%", "rr cycles", "aff cycles")
	for _, w := range ws {
		est, err := resource.New(w.Prog)
		if err != nil {
			return err
		}
		var biggest *ir.Module
		var size int64
		for _, name := range est.Reachable() {
			m := w.Prog.Modules[name]
			if m.IsLeaf() {
				if sz := m.MaterializedSize(); sz > size {
					size, biggest = sz, m
				}
			}
		}
		if biggest == nil {
			continue
		}
		mat, err := biggest.Materialize(1 << 22)
		if err != nil {
			return err
		}
		g, err := dag.Build(mat)
		if err != nil {
			return err
		}
		fine, err := sched.Schedule(mat, g, 4, 0)
		if err != nil {
			return err
		}
		res, err := comm.Analyze(fine, comm.Options{})
		if err != nil {
			return err
		}
		cfg := numa.Config{Banks: 2}
		rr, err := numa.Analyze(fine, res, numa.RoundRobin(mat.TotalSlots(), 2), cfg)
		if err != nil {
			return err
		}
		aff, err := numa.Analyze(fine, res, numa.AffinityMoves(fine, res, 2), cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10d %11.1f%% %12.1f%% %12d %12d\n",
			w.Name, res.GlobalMoves, 100*rr.FarFraction(), 100*aff.FarFraction(), rr.Cycles, aff.Cycles)
	}
	return nil
}

// printAblation renders variant rows grouped per benchmark.
func printAblation(title string, rows []core.AblationRow, variants int) {
	fmt.Println(title)
	if len(rows) == 0 {
		return
	}
	fmt.Printf("%-10s", "benchmark")
	for i := 0; i < variants; i++ {
		fmt.Printf(" %20s", rows[i].Variant)
	}
	fmt.Println()
	for i := 0; i < len(rows); i += variants {
		fmt.Printf("%-10s", rows[i].Name)
		for j := 0; j < variants; j++ {
			fmt.Printf(" %20.2f", rows[i+j].Speedup)
		}
		fmt.Println()
	}
}

func fig5(scale string, fth int64) error {
	// Fig. 5 characterizes initial modularity, so skip flattening.
	ws, err := scaleWorkloads(scale, 0, false)
	if err != nil {
		return err
	}
	useFTh := fth
	if useFTh == 0 {
		if scale == "paper" {
			useFTh = 2_000_000
		} else {
			useFTh = 2000
		}
	}
	rows, err := core.Fig5(ws, useFTh)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 5: %% of modules per gate-count range (FTh = %d)\n", useFTh)
	header := []string{"range"}
	for _, r := range rows {
		header = append(header, r.Name)
	}
	fmt.Println(strings.Join(header, "\t"))
	for bi, b := range resource.Fig5Buckets {
		cells := []string{b.Label}
		for _, r := range rows {
			cells = append(cells, strconv.FormatFloat(r.Percent[bi], 'f', 1, 64))
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Println("flattenable% (modules at or under FTh):")
	for _, r := range rows {
		fmt.Printf("  %-10s %6.1f%%\n", r.Name, r.FlattenedPct)
	}
	return nil
}

// workloadMemo holds built workloads — and, crucially, their warm
// EvalCaches — across the experiments of one qbench run, so -experiment
// all compiles each benchmark once and later figures reuse the leaf
// characterizations of earlier ones (fig7 re-runs fig6's evaluations;
// fig8 only re-runs comm.Analyze over fig6's schedules).
var workloadMemo = map[string][]core.Workload{}

func workloads(fth int64, flatten bool, workers int) ([]core.Workload, error) {
	key := fmt.Sprintf("%d|%t|%d", fth, flatten, workers)
	if ws, ok := workloadMemo[key]; ok {
		return ws, nil
	}
	var ws []core.Workload
	for _, b := range bench.AllSmall() {
		w, err := buildWorkload(b, fth, flatten, workers)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	workloadMemo[key] = ws
	return ws, nil
}

func scaleWorkloads(scale string, fth int64, flatten bool) ([]core.Workload, error) {
	set := bench.AllSmall()
	if scale == "paper" {
		set = bench.All()
	}
	var ws []core.Workload
	for _, b := range set {
		w, err := buildWorkload(b, fth, flatten, 0)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

func buildWorkload(b bench.Benchmark, fth int64, flatten bool, workers int) (core.Workload, error) {
	opts := b.Pipeline
	if fth != 0 {
		opts.FTh = fth
	}
	opts.SkipFlatten = !flatten
	p, err := core.Build(b.Source, opts)
	if err != nil {
		return core.Workload{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	return core.Workload{
		Name: b.Name, Params: b.Params, Prog: p,
		Cache: core.NewEvalCache(), Workers: workers, Obs: observer,
	}, nil
}

// perfRecord is one benchmark's machine-readable performance summary,
// written as BENCH_<name>.json by -perf-out for CI trend tracking.
type perfRecord struct {
	Benchmark      string          `json:"benchmark"`
	Params         string          `json:"params"`
	Scheduler      string          `json:"scheduler"`
	K              int             `json:"k"`
	ColdWallMS     float64         `json:"cold_wall_ms"`
	WarmWallMS     float64         `json:"warm_wall_ms"`
	DiskWarmWallMS float64         `json:"disk_warm_wall_ms"`
	DiskHits       int64           `json:"disk_hits"`
	CacheHitRate   float64         `json:"cache_hit_rate"`
	CacheStats     core.CacheStats `json:"cache_stats"`
	PeakGoroutines int64           `json:"peak_goroutines"`
	SpeedupVsNaive float64         `json:"speedup_vs_naive"`
	GoMaxProcs     int             `json:"gomaxprocs"`
	Workers        int             `json:"workers"`
	Scaling        []scalingPoint  `json:"scaling,omitempty"`
}

// scalingPoint is one cell of the worker-count scaling matrix: a cold
// evaluation of the same benchmark with the engine pool pinned to
// Workers goroutines. The matrix contextualizes the timed record — on a
// single-core CI host the w=4 point shows the pool saturating at
// GOMAXPROCS, on multi-core hosts it shows the parallel speedup — but
// it is never gated, so host-dependent scaling can't fail a build.
type scalingPoint struct {
	Workers        int     `json:"workers"`
	ColdWallMS     float64 `json:"cold_wall_ms"`
	PeakGoroutines int64   `json:"peak_goroutines"`
}

// scalingWorkers is the worker-count matrix measured per record.
var scalingWorkers = []int{1, 4}

// measureScaling runs one cold evaluation per worker count, each with a
// fresh cache and registry so the points are independent of the timed
// cold/warm pair and of each other.
func measureScaling(b bench.Benchmark, sched core.Scheduler, fth int64) ([]scalingPoint, error) {
	var points []scalingPoint
	for _, nw := range scalingWorkers {
		w, err := buildWorkload(b, fth, true, nw)
		if err != nil {
			return nil, err
		}
		reg := obs.NewRegistry()
		opts := core.EvalOptions{
			Scheduler: sched, K: 4,
			Cache: w.Cache, Workers: nw,
			Obs: &obs.Observer{Metrics: reg},
		}
		start := time.Now()
		if _, err := core.Evaluate(w.Prog, opts); err != nil {
			return nil, fmt.Errorf("%s workers=%d: %w", b.Name, nw, err)
		}
		points = append(points, scalingPoint{
			Workers:        nw,
			ColdWallMS:     float64(time.Since(start).Microseconds()) / 1000,
			PeakGoroutines: reg.Gauge("engine.workers.peak").Value(),
		})
	}
	return points, nil
}

// measureDiskWarm prices the warm-restart path: populate a persistent
// store with one untimed evaluation, close the cache (simulating
// process exit), reopen the same directory with cold memory, and time
// an evaluation that must be served entirely from the disk layer. The
// timed cold/warm pair stays memory-only so committed trajectories are
// unaffected; this measurement rides alongside it.
func measureDiskWarm(b bench.Benchmark, sched core.Scheduler, fth int64, workers int) (float64, int64, error) {
	dir, err := os.MkdirTemp("", "qbench-cas-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)

	w, err := buildWorkload(b, fth, true, workers)
	if err != nil {
		return 0, 0, err
	}
	warmCache, err := core.OpenEvalCache(core.CacheConfig{Dir: dir})
	if err != nil {
		return 0, 0, err
	}
	opts := core.EvalOptions{Scheduler: sched, K: 4, Cache: warmCache, Workers: w.Workers}
	if _, err := core.Evaluate(w.Prog, opts); err != nil {
		warmCache.Close()
		return 0, 0, fmt.Errorf("%s disk populate: %w", b.Name, err)
	}
	warmCache.Close()

	coldProc, err := core.OpenEvalCache(core.CacheConfig{Dir: dir})
	if err != nil {
		return 0, 0, err
	}
	defer coldProc.Close()
	opts.Cache = coldProc
	start := time.Now()
	if _, err := core.Evaluate(w.Prog, opts); err != nil {
		return 0, 0, fmt.Errorf("%s disk warm: %w", b.Name, err)
	}
	wall := float64(time.Since(start).Microseconds()) / 1000
	return wall, coldProc.Stats().DiskHits, nil
}

// writeSeedCorpus evaluates every gated benchmark through the daemon's
// request defaults (lpfs, k=4, d unlimited, fth=2000, default movement
// accounting) into a persistent result store at dir. Because the cache
// keys are derived from the same Config path qschedd uses, a daemon
// started with -cache-preload pointed here serves those requests from
// the seed store on its very first compile.
func writeSeedCorpus(dir string) error {
	cache, err := core.OpenEvalCache(core.CacheConfig{Dir: dir})
	if err != nil {
		return err
	}
	defer cache.Close()
	for _, b := range bench.Gated() {
		cfg := request.Config{Bench: b.Name}.WithDefaults()
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		p, err := cfg.Build(nil)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		eopts, err := cfg.EvalOptions()
		if err != nil {
			return err
		}
		eopts.Cache = cache
		if _, err := core.Evaluate(p, eopts); err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		st := cache.Stats()
		fmt.Printf("%-10s seeded  (%d records, %.1f KiB on disk)\n",
			b.Name, st.DiskEntries, float64(st.DiskBytes)/1024)
	}
	return nil
}

// regressionLimit flags a fresh cold wall time as a regression when it
// exceeds the committed baseline by more than 25%, with an absolute
// 50ms slack so millisecond-scale benchmarks don't trip on scheduler
// jitter from a noisy CI host.
func regressionLimit(baselineMS float64) float64 {
	return baselineMS*1.25 + 50
}

// checkAgainst compares a fresh record with the committed baseline in
// dir, gating both the cold and warm wall times with the same 25%+50ms
// slack. A missing baseline file is not an error — new benchmarks join
// the trajectory on their first committed record.
func checkAgainst(dir string, rec perfRecord) error {
	path := filepath.Join(dir, "BENCH_"+rec.Benchmark+".json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		fmt.Printf("%-10s no baseline at %s, skipping check\n", rec.Benchmark, path)
		return nil
	}
	if err != nil {
		return err
	}
	var base perfRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if limit := regressionLimit(base.ColdWallMS); rec.ColdWallMS > limit {
		return fmt.Errorf("%s: cold wall time %.1fms exceeds %.1fms (baseline %.1fms + 25%% + 50ms slack)",
			rec.Benchmark, rec.ColdWallMS, limit, base.ColdWallMS)
	}
	if limit := regressionLimit(base.WarmWallMS); rec.WarmWallMS > limit {
		return fmt.Errorf("%s: warm wall time %.1fms exceeds %.1fms (baseline %.1fms + 25%% + 50ms slack)",
			rec.Benchmark, rec.WarmWallMS, limit, base.WarmWallMS)
	}
	return nil
}

// checkReportAgainst diffs a fresh schedule report with the committed
// baseline in dir, printing the module/region/step attribution of any
// movement. Only a schedule regression (longer comm-expanded runtime or
// longer zero-comm schedule) is an error; improvements and neutral
// shuffles are narrated but pass. A missing baseline passes like
// checkAgainst.
func checkReportAgainst(dir string, rec *report.Report) error {
	path := filepath.Join(dir, "REPORT_"+rec.Benchmark+".json")
	base, err := report.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		fmt.Printf("%-10s no baseline report at %s, skipping check\n", rec.Benchmark, path)
		return nil
	}
	if err != nil {
		return err
	}
	d := report.Diff(base, rec)
	if err := d.WriteText(os.Stdout); err != nil {
		return err
	}
	if d.Regression {
		var buf strings.Builder
		if err := d.WriteText(&buf); err != nil {
			return err
		}
		return fmt.Errorf("schedule regression vs %s:\n%s", path, buf.String())
	}
	return nil
}

// writePerfRecords evaluates each gated benchmark (the eight small
// presets plus the extended QAOA/QFT/QPE workloads) twice at k=4 — a cold
// run that fills the EvalCache and a warm run that should hit it — and
// writes the wall times, cache behavior, worker-pool peak and host
// parallelism (GOMAXPROCS and the effective worker count) per
// benchmark, plus an ungated worker-scaling matrix (one extra cold run
// per scalingWorkers entry) and a REPORT_<name>.json schedule report
// from a final, untimed profiled run (profiling bypasses the warm
// comm-cache fast path, so it stays out of the timed pair to keep wall
// times comparable with committed baselines). Each benchmark gets a fresh cache and
// metrics registry so records are independent. With a non-empty against
// / reportAgainst dir, every record is also checked for wall-time /
// schedule regressions; all benchmarks still run and write records
// before the first regression is reported.
func writePerfRecords(dir, against, reportAgainst, schedName string, fth int64, workers int) error {
	sched, err := core.SchedulerByName(schedName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if fth == 0 {
		fth = 2000
	}
	var regressions []error
	for _, b := range bench.Gated() {
		w, err := buildWorkload(b, fth, true, workers)
		if err != nil {
			return err
		}
		reg := obs.NewRegistry()
		opts := core.EvalOptions{
			Scheduler: sched, K: 4,
			Cache: w.Cache, Workers: w.Workers,
			Obs: &obs.Observer{Metrics: reg},
		}
		start := time.Now()
		m, err := core.Evaluate(w.Prog, opts)
		if err != nil {
			return fmt.Errorf("%s cold: %w", b.Name, err)
		}
		cold := time.Since(start)
		afterCold := w.Cache.Stats()
		start = time.Now()
		if _, err := core.Evaluate(w.Prog, opts); err != nil {
			return fmt.Errorf("%s warm: %w", b.Name, err)
		}
		warm := time.Since(start)
		warmStats := w.Cache.Stats().Sub(afterCold)
		effWorkers := workers
		if effWorkers == 0 {
			effWorkers = runtime.GOMAXPROCS(0)
		}
		scaling, err := measureScaling(b, sched, fth)
		if err != nil {
			return err
		}
		diskWarm, diskHits, err := measureDiskWarm(b, sched, fth, workers)
		if err != nil {
			return err
		}
		rec := perfRecord{
			Benchmark: b.Name, Params: b.Params,
			Scheduler: sched.Name(), K: 4,
			ColdWallMS:     float64(cold.Microseconds()) / 1000,
			WarmWallMS:     float64(warm.Microseconds()) / 1000,
			DiskWarmWallMS: diskWarm,
			DiskHits:       diskHits,
			CacheHitRate:   warmStats.CommHitRate(),
			CacheStats:     w.Cache.Stats(),
			PeakGoroutines: reg.Gauge("engine.workers.peak").Value(),
			SpeedupVsNaive: m.SpeedupVsNaive(),
			GoMaxProcs:     runtime.GOMAXPROCS(0),
			Workers:        effWorkers,
			Scaling:        scaling,
		}
		data, err := json.MarshalIndent(rec, "", " ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+b.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		var scale strings.Builder
		for _, p := range rec.Scaling {
			fmt.Fprintf(&scale, "  w=%d %.1fms", p.Workers, p.ColdWallMS)
		}
		fmt.Printf("%-10s cold %8.1fms  warm %8.1fms  disk-warm %8.1fms  hit rate %5.1f%%%s  -> %s\n",
			b.Name, rec.ColdWallMS, rec.WarmWallMS, rec.DiskWarmWallMS, 100*rec.CacheHitRate, scale.String(), path)
		if against != "" {
			if err := checkAgainst(against, rec); err != nil {
				regressions = append(regressions, err)
			}
			// A fresh cold process answering from the disk layer must land
			// near the in-memory warm path, not near the true cold path —
			// the same 50ms absolute slack absorbs host jitter.
			if limit := 2*rec.WarmWallMS + 50; rec.DiskWarmWallMS > limit {
				regressions = append(regressions, fmt.Errorf(
					"%s: disk-warm wall time %.1fms exceeds %.1fms (2x warm %.1fms + 50ms slack)",
					b.Name, rec.DiskWarmWallMS, limit, rec.WarmWallMS))
			}
		}

		popts := opts
		popts.Profile = report.NewCollector()
		pm, err := core.Evaluate(w.Prog, popts)
		if err != nil {
			return fmt.Errorf("%s profile: %w", b.Name, err)
		}
		sr := core.BuildReport(popts.Profile, b.Name, pm, popts)
		rpath := filepath.Join(dir, "REPORT_"+b.Name+".json")
		if err := sr.WriteJSONFile(rpath); err != nil {
			return err
		}
		if reportAgainst != "" {
			if err := checkReportAgainst(reportAgainst, sr); err != nil {
				regressions = append(regressions, err)
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regression vs committed baselines: %w", errors.Join(regressions...))
	}
	return nil
}
