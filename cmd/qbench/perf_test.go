package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/report"
)

func writeBaseline(t *testing.T, dir string, rec perfRecord) {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+rec.Benchmark+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAgainstGatesColdAndWarm covers the pass and fail branches of
// the wall-time gate on both the cold and warm measurements.
func TestCheckAgainstGatesColdAndWarm(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, perfRecord{Benchmark: "X", ColdWallMS: 100, WarmWallMS: 40})

	// Within both limits (cold 100*1.25+50=175, warm 40*1.25+50=100).
	ok := perfRecord{Benchmark: "X", ColdWallMS: 170, WarmWallMS: 95}
	if err := checkAgainst(dir, ok); err != nil {
		t.Errorf("in-limit record rejected: %v", err)
	}

	cold := perfRecord{Benchmark: "X", ColdWallMS: 176, WarmWallMS: 10}
	if err := checkAgainst(dir, cold); err == nil || !strings.Contains(err.Error(), "cold wall") {
		t.Errorf("cold regression not caught: %v", err)
	}

	warm := perfRecord{Benchmark: "X", ColdWallMS: 10, WarmWallMS: 101}
	if err := checkAgainst(dir, warm); err == nil || !strings.Contains(err.Error(), "warm wall") {
		t.Errorf("warm regression not caught: %v", err)
	}

	// New benchmarks join the trajectory without a baseline.
	if err := checkAgainst(dir, perfRecord{Benchmark: "Y", ColdWallMS: 1e6, WarmWallMS: 1e6}); err != nil {
		t.Errorf("missing baseline rejected: %v", err)
	}
}

// minimalReport builds the smallest valid schedule report for gate
// branch tests.
func minimalReport(commCycles, zeroSteps int64) *report.Report {
	return &report.Report{
		Schema: report.SchemaVersion, Benchmark: "X", Scheduler: "lpfs", K: 4,
		Totals: report.Totals{CommCycles: commCycles, ZeroCommSteps: zeroSteps},
	}
}

func TestCheckReportAgainstBranches(t *testing.T) {
	dir := t.TempDir()
	if err := minimalReport(100, 80).WriteJSONFile(filepath.Join(dir, "REPORT_X.json")); err != nil {
		t.Fatal(err)
	}

	if err := checkReportAgainst(dir, minimalReport(100, 80)); err != nil {
		t.Errorf("identical report rejected: %v", err)
	}
	if err := checkReportAgainst(dir, minimalReport(90, 75)); err != nil {
		t.Errorf("improvement rejected: %v", err)
	}
	err := checkReportAgainst(dir, minimalReport(120, 80))
	if err == nil || !strings.Contains(err.Error(), "schedule regression") {
		t.Errorf("longer comm-expanded runtime not caught: %v", err)
	}
	err = checkReportAgainst(dir, minimalReport(100, 90))
	if err == nil || !strings.Contains(err.Error(), "schedule regression") {
		t.Errorf("longer zero-comm schedule not caught: %v", err)
	}
	fresh := minimalReport(100, 80)
	fresh.Benchmark = "Y"
	if err := checkReportAgainst(dir, fresh); err != nil {
		t.Errorf("missing baseline rejected: %v", err)
	}
}

// TestWritePerfRecordsEmitsReports runs the full -perf-out sweep and
// checks every benchmark got both its perf record and a valid schedule
// report, then injects a baseline regression and checks the -report-
// against gate attributes and fails on it.
func TestWritePerfRecordsEmitsReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full perf sweep is slow; run without -short")
	}
	dir := t.TempDir()
	if err := writePerfRecords(dir, "", "", "lpfs", 0, 0); err != nil {
		t.Fatal(err)
	}
	var sha *report.Report
	for _, b := range bench.Gated() {
		if _, err := os.Stat(filepath.Join(dir, "BENCH_"+b.Name+".json")); err != nil {
			t.Errorf("missing perf record: %v", err)
		}
		r, err := report.ReadFile(filepath.Join(dir, "REPORT_"+b.Name+".json"))
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if r.Benchmark != b.Name || len(r.Modules) == 0 {
			t.Errorf("%s: report names %q with %d modules", b.Name, r.Benchmark, len(r.Modules))
		}
		if b.Name == "SHA-1" {
			sha = r
		}
	}
	if sha == nil {
		t.Fatal("no SHA-1 report")
	}

	// Baseline claiming SHA-1 used to finish faster: the fresh report must
	// trip the gate with module-level attribution.
	baseDir := t.TempDir()
	worse := *sha
	worse.Totals.CommCycles -= 10
	if err := worse.WriteJSONFile(filepath.Join(baseDir, "REPORT_SHA-1.json")); err != nil {
		t.Fatal(err)
	}
	err := checkReportAgainst(baseDir, sha)
	if err == nil || !strings.Contains(err.Error(), "schedule regression") {
		t.Errorf("injected baseline regression not caught: %v", err)
	}
	// Against its own output the gate passes clean.
	if err := checkReportAgainst(dir, sha); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
}
