package main

import "testing"

// TestExperimentsRun exercises every experiment end to end at small
// scale (the printed tables go to stdout; correctness of the numbers is
// covered by internal/core tests — this pins the drivers and formats).
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow; run without -short")
	}
	for _, exp := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "sensd", "sensepr", "ablation", "numa"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, "small", 0, "lpfs", 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("fig99", "small", 0, "lpfs", 0); err == nil {
		t.Error("unknown experiment accepted")
	}
}
