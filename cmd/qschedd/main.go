// Command qschedd is the compile service: a long-running daemon that
// serves the Multi-SIMD pipeline over a versioned HTTP/JSON API.
// Concurrent requests share one evaluation cache, identical in-flight
// requests are coalesced into a single engine run, and admission
// control bounds concurrent work (429 + Retry-After past the queue).
//
// Endpoints (see DESIGN.md "Service boundary"):
//
//	POST /v1/compile     evaluate a program or benchmark -> metrics
//	POST /v1/schedule    fine-grained schedule of one leaf module
//	POST /v1/report      full schedule report (versioned JSON analytics)
//	POST /v1/verify      evaluation with the legality oracle forced on
//	GET  /v1/healthz     liveness, queue depth, cache statistics
//	GET  /v1/version     service/API versions, schedulers, benchmarks
//	GET  /v1/debug/state live snapshot: flights, queue, cache, runtime
//	GET  /v1/metrics/range historical metrics from the persistent store
//	POST /v1/debug/snapshot freeze a postmortem bundle right now
//	GET  /v1/dashboard   self-contained HTML ops dashboard
//	GET  /metrics        Prometheus text metrics (/metrics.json for JSON)
//	GET  /debug/pprof/   net/http/pprof, on the same port
//
// Usage:
//
//	qschedd -addr :8080 -max-inflight 4 -queue 16 -access-log -
//
// Every request carries an X-Request-ID (accepted from the caller or
// generated), echoed in the response header and envelope and stamped on
// the access-log line, so one id correlates the client's view with
// everything the server did.
//
// Shutdown: SIGINT/SIGTERM stops accepting connections, drains
// in-flight evaluations up to -shutdown-timeout, then aborts the rest.
// SIGHUP reopens a file-backed access log (log rotation).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strconv"
	"strings"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/obs/telem"
	"github.com/scaffold-go/multisimd/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen `address` (host:port)")
		maxInflight     = flag.Int("max-inflight", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
		queue           = flag.Int("queue", 0, "max evaluations waiting for a slot before 429 (0 = 4x max-inflight, negative = none)")
		timeout         = flag.Duration("request-timeout", 2*time.Minute, "per-evaluation deadline")
		workers         = flag.Int("workers", 0, "engine worker-pool size per evaluation (0 = engine default)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight work on SIGINT/SIGTERM")
		accessLog       = flag.String("access-log", "", "structured JSON access log `sink`: - or stdout, stderr, a file path; empty = off")
		slowThreshold   = flag.Duration("slow-threshold", time.Second, "requests at or over this wall time log their per-phase breakdown (negative = off)")
		sampleEvery     = flag.Duration("sample-every", 2*time.Second, "runtime sampler and dashboard history period (negative = off)")
		cacheDir        = flag.String("cache-dir", "", "`directory` for the persistent result store; empty = memory only (cold every restart)")
		cacheMemBudget  = flag.String("cache-mem-budget", "", "in-memory cache byte budget, e.g. 256MiB or 512k; empty = unbounded")
		cacheMemEntries = flag.Int("cache-mem-entries", 0, "in-memory cache entry budget (0 = unbounded)")
		cacheDiskBudget = flag.String("cache-disk-budget", "", "on-disk store byte budget enforced by background compaction; empty = unbounded")
		cachePreload    = flag.String("cache-preload", "", "read-only seed store `directory` served below -cache-dir (e.g. a committed corpus)")
		telemetryDir    = flag.String("telemetry-dir", "", "`directory` for the persistent metrics store and postmortem bundles; empty = history lives only in memory")
		telemetryRet    = flag.Duration("telemetry-retention", 24*time.Hour, "drop persisted samples older than this (negative = keep forever)")
		telemetryBudget = flag.String("telemetry-budget", "64MiB", "telemetry store byte budget; old segments downsample then drop to stay under it (empty = unbounded)")
		snapshotOnSlow  = flag.Bool("snapshot-on-slow", true, "write a postmortem bundle automatically on slow, error, and 429 responses")
	)
	flag.Parse()

	memBudget, err := parseByteSize(*cacheMemBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qschedd: -cache-mem-budget:", err)
		os.Exit(1)
	}
	diskBudget, err := parseByteSize(*cacheDiskBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qschedd: -cache-disk-budget:", err)
		os.Exit(1)
	}
	cache, err := core.OpenEvalCache(core.CacheConfig{
		Dir:        *cacheDir,
		Preload:    *cachePreload,
		MemEntries: *cacheMemEntries,
		MemBytes:   memBudget,
		DiskBytes:  diskBudget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qschedd: cache:", err)
		os.Exit(1)
	}
	defer cache.Close()

	alog, err := openAccessLog(*accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qschedd:", err)
		os.Exit(1)
	}
	defer alog.Close()

	// SIGHUP is the log-rotation convention: the operator renames the
	// live file aside and signals; the next line lands in a fresh file.
	// Non-file sinks make Reopen a no-op, so signaling is always safe.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := alog.Reopen(); err != nil {
				fmt.Fprintln(os.Stderr, "qschedd: access-log reopen:", err)
			} else {
				fmt.Fprintln(os.Stderr, "qschedd: access log reopened")
			}
		}
	}()

	telemBudget, err := parseByteSize(*telemetryBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qschedd: -telemetry-budget:", err)
		os.Exit(1)
	}
	var store *telem.Store
	if *telemetryDir != "" {
		store, err = telem.Open(telem.Options{
			Dir:       *telemetryDir,
			Retention: *telemetryRet,
			MaxBytes:  telemBudget,
			Step:      *sampleEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qschedd: telemetry:", err)
			os.Exit(1)
		}
		// Close after the server drains so the final sampler tick and any
		// in-flight postmortem write land in sealed segments.
		defer store.Close()
	}

	if err := run(*addr, server.Options{
		MaxInflight:    *maxInflight,
		MaxQueue:       *queue,
		Timeout:        *timeout,
		Workers:        *workers,
		Cache:          cache,
		AccessLog:      alog,
		SlowThreshold:  *slowThreshold,
		SampleEvery:    *sampleEvery,
		Telemetry:      store,
		NoAutoSnapshot: !*snapshotOnSlow,
	}, *shutdownTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "qschedd:", err)
		os.Exit(1)
	}
}

// parseByteSize reads a human byte size: a bare integer is bytes, and
// the suffixes k/m/g (or KiB/MiB/GiB, case-insensitive) scale by 1024.
// Empty means no budget (0).
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	lower := strings.ToLower(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		scale  int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.scale
			lower = strings.TrimSuffix(lower, u.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(lower), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}

// openAccessLog resolves the -access-log flag: "" disables (nil logger),
// "-"/"stdout" and "stderr" are the process streams, anything else is a
// file opened for append (created if missing) that supports SIGHUP
// rotation via Reopen.
func openAccessLog(dest string) (*obs.AccessLog, error) {
	switch dest {
	case "":
		return nil, nil
	case "-", "stdout":
		return obs.NewAccessLog(os.Stdout), nil
	case "stderr":
		return obs.NewAccessLog(os.Stderr), nil
	}
	l, err := obs.NewAccessLogFile(dest)
	if err != nil {
		return nil, fmt.Errorf("access log: %w", err)
	}
	return l, nil
}

func run(addr string, opts server.Options, shutdownTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := server.New(opts)
	defer srv.Close()
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "qschedd: serving on %s\n", addr)
		err := httpSrv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "qschedd: shutting down, draining in-flight work")
	srv.SetDraining()
	grace, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(grace); err != nil {
		fmt.Fprintf(os.Stderr, "qschedd: drain incomplete: %v\n", err)
	}
	if err := srv.Drain(grace); err != nil {
		fmt.Fprintf(os.Stderr, "qschedd: aborting stragglers: %v\n", err)
	}
	return nil
}
