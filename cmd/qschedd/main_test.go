package main

import "testing"

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"64k", 64 << 10, false},
		{"64KiB", 64 << 10, false},
		{"256MiB", 256 << 20, false},
		{"256mb", 256 << 20, false},
		{"2g", 2 << 30, false},
		{"  512 MiB ", 512 << 20, false},
		{"-1", 0, true},
		{"12q", 0, true},
		{"MiB", 0, true},
	}
	for _, c := range cases {
		got, err := parseByteSize(c.in)
		if c.err != (err != nil) {
			t.Errorf("parseByteSize(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if got != c.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
