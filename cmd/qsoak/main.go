// Command qsoak runs the soak/determinism sweep: seeded random
// hierarchical programs through the front end, every registered
// scheduler, the legality oracle, the serialization codecs and the full
// evaluation engine (see internal/soak). The defaults are the
// acceptance profile — 200 programs × 3 seeds × all registered
// schedulers — and every failure prints a command line that replays
// exactly the failing instance:
//
//	go run ./cmd/qsoak                      # full sweep
//	go run ./cmd/qsoak -programs 20         # quick pass
//	go run ./cmd/qsoak -base 1 -start-program 137 -programs 1 \
//	    -start-seed 2 -seeds 1              # replay one instance
//
// Exit status is 0 on a clean sweep and 1 when any invariant broke.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/scaffold-go/multisimd/internal/soak"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func main() {
	var (
		programs     = flag.Int("programs", 200, "number of program indices to sweep")
		seeds        = flag.Int("seeds", 3, "seed lanes per program index")
		base         = flag.Int64("base", 1, "base of the derived seed space")
		startProgram = flag.Int("start-program", 0, "first program index (replay windowing)")
		startSeed    = flag.Int("start-seed", 0, "first seed lane (replay windowing)")

		depth     = flag.Int("depth", 0, "call-graph depth below the entry (0 = generator default)")
		modules   = flag.Int("modules", 0, "modules per level (0 = generator default)")
		fanout    = flag.Int("fanout", 0, "max extra call sites per non-leaf (0 = generator default)")
		leafOps   = flag.Int("leaf-ops", 0, "gate ops per leaf (0 = generator default)")
		bodyGates = flag.Int("body-gates", 0, "stray gates per non-leaf (0 = generator default)")
		maxReg    = flag.Int("max-reg", 0, "max register width (0 = generator default)")
		loops     = flag.Bool("loops", true, "generate counted loops (collapsing Count multipliers)")
		wide      = flag.Bool("wide", true, "include three-qubit gates and Swap in leaf mixes")
		measure   = flag.Bool("measure", true, "include PrepZ/MeasZ and ancilla envelopes")

		schedulers    = flag.String("sched", "", "comma-separated scheduler names (empty = all registered)")
		cacheDir      = flag.String("cache-dir", "", "persistent result-store `directory`: adds a close-and-reopen restart lane to every engine check, asserting disk-served metrics stay bit-identical")
		workers       = flag.String("workers", "", "comma-separated engine worker counts to cross-check (empty = 1,4)")
		jsonOut       = flag.String("json", "", "write the sweep result as JSON to this file")
		quiet         = flag.Bool("q", false, "suppress progress lines")
		progressEvery = flag.Duration("progress-every", 10*time.Second, "minimum interval between progress lines (the final line always prints)")
	)
	flag.Parse()

	opts := soak.Options{
		Programs:     *programs,
		Seeds:        *seeds,
		Base:         *base,
		StartProgram: *startProgram,
		StartSeed:    *startSeed,
		Gen: verify.ProgramGenOptions{
			Depth:           *depth,
			ModulesPerLevel: *modules,
			Fanout:          *fanout,
			LeafOps:         *leafOps,
			BodyGates:       *bodyGates,
			MaxRegSize:      *maxReg,
			Loops:           *loops,
			Wide:            *wide,
			Measure:         *measure,
		},
	}
	opts.CacheDir = *cacheDir
	if *schedulers != "" {
		opts.Schedulers = strings.Split(*schedulers, ",")
	}
	if *workers != "" {
		for _, f := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || w < 0 {
				fmt.Fprintf(os.Stderr, "qsoak: bad -workers entry %q\n", f)
				os.Exit(2)
			}
			opts.Workers = append(opts.Workers, w)
		}
	}
	if !*quiet {
		// Print on a wall-clock cadence rather than a fixed index stride:
		// generated program sizes vary wildly, so "every N programs" is
		// either spammy on small sweeps or silent for minutes on big ones.
		start := time.Now()
		last := start
		rate := soak.NewRateEstimator(time.Minute)
		opts.Progress = func(u soak.ProgressUpdate) {
			now := time.Now()
			rate.Observe(now, float64(u.Instances))
			if now.Sub(last) < *progressEvery && u.Done != u.Total {
				return
			}
			last = now
			line := fmt.Sprintf("qsoak: %d/%d programs, %d instances, %d schedules verified, %d engine runs, %d failures, %s elapsed",
				u.Done, u.Total, u.Instances, u.Schedules, u.Evaluations, u.Failures,
				now.Sub(start).Round(time.Second))
			// ETA: scale instances seen so far to the full program count,
			// then extrapolate the remainder at the rolling instances/sec
			// (robust to the generator's wildly varying program sizes).
			if u.Done > 0 && u.Done < u.Total {
				estTotal := float64(u.Instances) * float64(u.Total) / float64(u.Done)
				if d, ok := rate.ETA(estTotal - float64(u.Instances)); ok {
					line += fmt.Sprintf(", ~%s left (%.0f inst/s)", d.Round(time.Second), rate.Rate())
				}
			}
			fmt.Println(line)
		}
	}

	res, err := soak.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsoak: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsoak: %v\n", err)
			os.Exit(2)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "qsoak: write %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "qsoak: close %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}

	fmt.Printf("qsoak: %d instances, %d round trips, %d schedules verified, %d engine runs, sweep digest %016x\n",
		res.Instances, res.RoundTrips, res.Schedules, res.Evaluations, res.Digest)
	if res.Failed() {
		for _, f := range res.Failures {
			fmt.Printf("FAIL program %d lane %d (seed %d) scheduler %q stage %s: %s\n  replay: %s\n",
				f.Program, f.SeedLane, f.Seed, f.Scheduler, f.Stage, f.Detail, f.Repro)
		}
		if res.TruncatedFailures > 0 {
			fmt.Printf("FAIL %d further failures truncated\n", res.TruncatedFailures)
		}
		os.Exit(1)
	}
	fmt.Println("qsoak: all invariants held")
}
