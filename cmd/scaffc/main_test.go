package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validSample = `
module f(qbit x[2], qbit anc) {
  CNOT(x[0], x[1]);
  Toffoli(x[0], x[1], anc);
}
module main() {
  qbit q[2];
  qbit a;
  H(q[0]);
  f(q, a);
}
`

func TestRunReport(t *testing.T) {
	src := writeTemp(t, "p.scf", validSample)
	out := filepath.Join(t.TempDir(), "report.txt")
	if err := run("main", "none", out, 0, false, false, 0, 0, "", false, []string{src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "total gates:") || !strings.Contains(text, "min qubits Q:") {
		t.Errorf("report missing fields:\n%s", text)
	}
}

func TestRunEmitQASM(t *testing.T) {
	src := writeTemp(t, "p.scf", validSample)
	out := filepath.Join(t.TempDir(), "out.qasm")
	if err := run("main", "qasm", out, 0, false, false, 0, 0, "", false, []string{src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "H(q[0])") {
		t.Errorf("qasm missing gates:\n%s", text)
	}
	// Toffoli must have decomposed to primitives.
	if strings.Contains(text, "Toffoli") {
		t.Error("Toffoli not decomposed")
	}
}

func TestRunEmitScaffold(t *testing.T) {
	src := writeTemp(t, "p.scf", validSample)
	out := filepath.Join(t.TempDir(), "fmt.scf")
	if err := run("main", "scaffold", out, 0, false, false, 0, 0, "", false, []string{src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module f(qbit x[2], qbit anc)") {
		t.Errorf("formatted source wrong:\n%s", data)
	}
}

func TestRunBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.txt")
	if err := run("main", "none", out, 2000, false, false, 0, 0, "Grovers", false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("main", "none", "", 0, false, false, 0, 0, "", false, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("main", "none", "", 0, false, false, 0, 0, "NotABench", false, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
	src := writeTemp(t, "bad.scf", "this is not scaffold")
	if err := run("main", "none", "", 0, false, false, 0, 0, "", false, []string{src}); err == nil {
		t.Error("bad source accepted")
	}
	good := writeTemp(t, "ok.scf", validSample)
	if err := run("main", "pdf", "", 0, false, false, 0, 0, "", false, []string{good}); err == nil {
		t.Error("unknown emit format accepted")
	}
}
