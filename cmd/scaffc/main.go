// Command scaffc is the Scaffold-lite compiler driver: it parses,
// checks, lowers, decomposes and flattens a quantum program, then either
// reports resource estimates or emits flat QASM-HL — the toolflow of the
// paper's Fig. 3 pipeline (ScaffCC, §3.1) in one binary.
//
// Usage:
//
//	scaffc [flags] program.scf
//	scaffc -bench Grovers            # compile a built-in benchmark
//
// Flags:
//
//	-entry name      entry module (default "main")
//	-emit qasm|scaffold|none
//	                 output format: flat QASM-HL, formatted Scaffold-lite
//	                 source, or a resource report (the default)
//	-o file          output path (default stdout)
//	-fth N           flattening threshold (default 2,000,000)
//	-no-flatten      skip the FTh inlining pass
//	-no-decompose    keep Toffoli/rotations undecomposed
//	-reuse           recycle ancilla qubits in flattened leaves
//	-epsilon e       rotation decomposition accuracy (default 1e-10)
//	-limit N         QASM emission instruction cap (default 10M)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/parser"
	"github.com/scaffold-go/multisimd/internal/printer"
	"github.com/scaffold-go/multisimd/internal/resource"
)

func main() {
	entry := flag.String("entry", "main", "entry module name")
	emit := flag.String("emit", "none", "output: qasm or none")
	out := flag.String("o", "", "output file (default stdout)")
	fth := flag.Int64("fth", 0, "flattening threshold (0 = 2M default)")
	noFlatten := flag.Bool("no-flatten", false, "skip flattening")
	noDecompose := flag.Bool("no-decompose", false, "skip gate decomposition")
	epsilon := flag.Float64("epsilon", 0, "rotation accuracy (0 = 1e-10)")
	limit := flag.Int64("limit", 0, "QASM instruction cap (0 = 10M)")
	benchName := flag.String("bench", "", "compile a built-in benchmark instead of a file")
	ancReuse := flag.Bool("reuse", false, "recycle ancilla qubits in flattened leaves")
	flag.Parse()

	if err := run(*entry, *emit, *out, *fth, *noFlatten, *noDecompose, *epsilon, *limit, *benchName, *ancReuse, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "scaffc:", err)
		os.Exit(1)
	}
}

func run(entry, emit, out string, fth int64, noFlatten, noDecompose bool, epsilon float64, limit int64, benchName string, ancReuse bool, args []string) error {
	var src string
	opts := core.PipelineOptions{
		Entry:         entry,
		FTh:           fth,
		SkipFlatten:   noFlatten,
		SkipDecompose: noDecompose,
		Epsilon:       epsilon,
		AncillaReuse:  ancReuse,
	}
	switch {
	case benchName != "":
		b, ok := bench.ByName(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try BF, BWT, CN, Grovers, GSE, SHA-1, Shors, TFP)", benchName)
		}
		src = b.Source
		if b.Pipeline.FTh != 0 && fth == 0 {
			opts.FTh = b.Pipeline.FTh
		}
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("expected exactly one source file or -bench name")
	}

	prog, err := core.Build(src, opts)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch emit {
	case "scaffold":
		tree, err := parser.Parse(src)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, printer.Program(tree))
		return err
	case "qasm":
		n, err := core.EmitQASM(w, prog, limit)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scaffc: emitted %d instructions\n", n)
		return nil
	case "none":
		return report(w, prog)
	}
	return fmt.Errorf("unknown -emit %q", emit)
}

// report prints the resource-estimation summary: total gates, minimum
// qubits Q, and the per-module gate-count table (largest first).
func report(w io.Writer, prog *ir.Program) error {
	est, err := resource.New(prog)
	if err != nil {
		return err
	}
	gates, err := est.TotalGates()
	if err != nil {
		return err
	}
	q, err := est.MinQubits()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "total gates:   %d\n", gates)
	fmt.Fprintf(w, "min qubits Q:  %d\n", q)
	mods, err := est.SortedModuleGates()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "modules:       %d reachable\n", len(mods))
	fmt.Fprintln(w, "module gate counts:")
	for i, mc := range mods {
		if i == 20 {
			fmt.Fprintf(w, "  ... and %d more\n", len(mods)-20)
			break
		}
		leaf := " "
		if m := prog.Modules[mc.Name]; m != nil && m.IsLeaf() {
			leaf = "L"
		}
		fmt.Fprintf(w, "  %s %-32s %d\n", leaf, mc.Name, mc.Gates)
	}
	return nil
}
